package analysis

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mean", s.Mean, 5, 1e-12)
	approx(t, "var", s.Var, 32.0/7, 1e-12) // sample variance
	approx(t, "min", s.Min, 2, 0)
	approx(t, "max", s.Max, 9, 0)
	approx(t, "median", s.Median, 4.5, 1e-12)
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Var != 0 || s.Std != 0 || s.StdErr() != 0 {
		t.Errorf("single sample must have zero dispersion, got %+v", s)
	}
	lo, hi := s.CI(0.95)
	if lo != 42 || hi != 42 {
		t.Errorf("CI of single sample = [%v, %v], want collapsed to mean", lo, hi)
	}
}

func TestSummarizeRejectsBadInput(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample must error")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN must error")
	}
	if _, err := Summarize([]float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf must error")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileKnown(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	approx(t, "p0", Percentile(sorted, 0), 1, 0)
	approx(t, "p1", Percentile(sorted, 1), 4, 0)
	approx(t, "p50", Percentile(sorted, 0.5), 2.5, 1e-12)
	approx(t, "p25", Percentile(sorted, 0.25), 1.75, 1e-12)
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p0, p1 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		pa := math.Abs(math.Mod(p0, 1))
		pb := math.Abs(math.Mod(p1, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := Percentile(xs, pa), Percentile(xs, pb)
		// Monotone in p and bounded by the sample range.
		return qa <= qb && qa >= xs[0] && qb <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCIContainsMeanAndShrinksWithConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 30)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	lo95, hi95 := s.CI(0.95)
	lo50, hi50 := s.CI(0.50)
	if !(lo95 <= s.Mean && s.Mean <= hi95) {
		t.Errorf("95%% CI [%v,%v] does not contain mean %v", lo95, hi95, s.Mean)
	}
	if hi50-lo50 >= hi95-lo95 {
		t.Errorf("50%% CI (width %v) not narrower than 95%% CI (width %v)", hi50-lo50, hi95-lo95)
	}
}

func TestCICoverage(t *testing.T) {
	// Frequentist check: across many synthetic samples from N(0,1),
	// the 95% CI must contain 0 roughly 95% of the time.
	rng := rand.New(rand.NewSource(42))
	const trials, n = 2000, 12
	hits := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		s, err := Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := s.CI(0.95)
		if lo <= 0 && 0 <= hi {
			hits++
		}
	}
	cover := float64(hits) / trials
	if cover < 0.93 || cover > 0.97 {
		t.Errorf("empirical 95%% CI coverage = %.3f, want ≈0.95", cover)
	}
}

func TestWelchTIdenticalSamples(t *testing.T) {
	a, _ := Summarize([]float64{5, 5, 5})
	r, err := WelchT(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.T != 0 || r.P != 1 {
		t.Errorf("identical constant samples: T=%v P=%v, want 0, 1", r.T, r.P)
	}
}

func TestWelchTSeparatedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = 5 + rng.NormFloat64()
	}
	sa, _ := Summarize(a)
	sb, _ := Summarize(b)
	r, err := WelchT(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-6 {
		t.Errorf("clearly separated samples: p = %v, want ≈0", r.P)
	}
	if r.T >= 0 {
		t.Errorf("mean(a) < mean(b) must give negative T, got %v", r.T)
	}
}

func TestWelchTNeedsTwoObservations(t *testing.T) {
	one, _ := Summarize([]float64{1})
	two, _ := Summarize([]float64{1, 2})
	if _, err := WelchT(one, two); err == nil {
		t.Error("n=1 sample must be rejected")
	}
}

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "slope", f.Slope, 3, 1e-12)
	approx(t, "intercept", f.Intercept, -7, 1e-12)
	approx(t, "r2", f.R2, 1, 1e-12)
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("one point must error")
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("constant x must error")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestGain(t *testing.T) {
	approx(t, "gain", Gain(100, 75), 0.25, 1e-12)
	approx(t, "negative gain", Gain(100, 110), -0.10, 1e-12)
}

func TestPairwiseGains(t *testing.T) {
	gs, err := PairwiseGains([]float64{100, 200}, []float64{75, 160})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "g0", gs[0], 0.25, 1e-12)
	approx(t, "g1", gs[1], 0.20, 1e-12)
	if _, err := PairwiseGains([]float64{0}, []float64{1}); err == nil {
		t.Error("zero base must error")
	}
	if _, err := PairwiseGains([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestSummarizeQuickInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Var >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
