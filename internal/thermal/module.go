package thermal

import (
	"fmt"

	"greensched/internal/estvec"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

// Module closes the room-model loop inside a scenario: at every
// control tick it feeds the Monitor the platform's instantaneous
// per-node draws (sim.NodeView.PowerW, platform order — the same index
// space as the recirculation matrix) and, when Threshold is positive,
// wraps elections so servers whose measured inlet runs hot rank behind
// cool ones. Temperature then emerges from placement instead of being
// injected, and placement reacts to temperature — the paper's
// "fine-grained scheduling by taking into account spatial information"
// as one stackable module.
type Module struct {
	sim.BaseModule

	// Monitor is the heat-recirculation model; its matrix must be
	// sized to the platform (validated in Init). Give every run its
	// own (it carries smoothed state).
	Monitor *Monitor

	// Threshold, when positive, enables thermal-aware ranking: nodes
	// with inlet temperature above it sort behind cooler ones, the
	// stack's base policy ordering within each group. 0 keeps the
	// module monitor-only.
	Threshold float64

	names []string
	temps map[string]float64
	maxC  float64
}

// Init implements sim.Module.
func (m *Module) Init(r *sim.Runner) error {
	if m.Monitor == nil {
		return fmt.Errorf("thermal: module needs a monitor")
	}
	if err := m.Monitor.Validate(); err != nil {
		return err
	}
	m.names = r.NodeNames()
	if got, want := len(m.Monitor.D), len(m.names); got != want {
		return fmt.Errorf("thermal: %d×%d matrix for a %d-node platform", got, got, want)
	}
	m.temps = make(map[string]float64, len(m.names))
	m.maxC = m.Monitor.Ambient
	return nil
}

// OnTick implements sim.Module: it folds the tick's per-node draws
// into the room model and refreshes the per-server temperatures the
// election wrapper ranks on.
func (m *Module) OnTick(_ float64, ctl sim.Control) {
	nodes := ctl.Nodes()
	watts := make([]float64, len(nodes))
	for i, n := range nodes {
		watts[i] = n.PowerW
	}
	temps, err := m.Monitor.Update(watts)
	if err != nil {
		// Init pinned the matrix to the platform size; a mismatch here
		// is a simulation bug, mirroring the adaptive loop's feed.
		panic(fmt.Sprintf("thermal: feed: %v", err))
	}
	for i, n := range nodes {
		m.temps[n.Name] = temps[i]
		if temps[i] > m.maxC {
			m.maxC = temps[i]
		}
	}
}

// WrapPolicy implements sim.Module.
func (m *Module) WrapPolicy(_ float64, _ workload.Task, base sched.Policy) sched.Policy {
	if m.Threshold <= 0 {
		return base
	}
	return moduleAware{inner: base, threshold: m.Threshold, temps: m.temps}
}

// MaxSeenC returns the hottest inlet temperature observed at any tick
// of the run (ambient before the first tick).
func (m *Module) MaxSeenC() float64 { return m.maxC }

// TempC returns the node's latest measured inlet temperature.
func (m *Module) TempC(node string) (float64, bool) {
	t, ok := m.temps[node]
	return t, ok
}

// moduleAware is AwarePolicy keyed by the module's own measurements
// instead of an estimation-vector tag: cool servers before hot ones,
// the inner ordering within each group. Servers without a measurement
// (no tick yet) are treated as cool — a missing sensor must not starve
// a node.
type moduleAware struct {
	inner     sched.Policy
	threshold float64
	temps     map[string]float64
}

// Name implements sched.Policy.
func (p moduleAware) Name() string { return "THERMAL(" + p.inner.Name() + ")" }

// Less implements sched.Policy.
func (p moduleAware) Less(a, b *estvec.Vector) bool {
	ha, hb := p.hot(a.Server), p.hot(b.Server)
	if ha != hb {
		return !ha // cool before hot
	}
	return p.inner.Less(a, b)
}

func (p moduleAware) hot(server string) bool {
	t, ok := p.temps[server]
	return ok && t > p.threshold
}
