package thermal

import (
	"greensched/internal/estvec"
	"greensched/internal/sched"
)

// TagInletTemp is the estimation-vector tag thermal-aware SEDs set to
// their measured inlet temperature.
const TagInletTemp = estvec.Tag("inlet_temp_c")

// AwarePolicy is a spatial/thermal plug-in scheduler: servers whose
// inlet temperature is below Threshold rank before hot ones; within
// each group the Inner policy orders as usual. Servers that do not
// report a temperature are treated as cool (fail-open: a missing
// sensor must not starve a node).
type AwarePolicy struct {
	Inner     sched.Policy
	Threshold float64 // °C
}

// Name implements sched.Policy.
func (p AwarePolicy) Name() string { return "THERMAL(" + p.Inner.Name() + ")" }

// Less implements sched.Policy.
func (p AwarePolicy) Less(a, b *estvec.Vector) bool {
	ha, hb := p.hot(a), p.hot(b)
	if ha != hb {
		return !ha // cool before hot
	}
	return p.Inner.Less(a, b)
}

func (p AwarePolicy) hot(v *estvec.Vector) bool {
	t, ok := v.Get(TagInletTemp)
	return ok && t > p.Threshold
}
