// Package thermal models machine-room heat so that the §IV-C
// temperature signal can be *measured* instead of injected, and so
// placement can use spatial information (the paper's future work:
// "fine-grained scheduling by taking into account spatial
// information").
//
// The model is the standard heat-recirculation abstraction: node i's
// inlet temperature is the cooled ambient plus a weighted sum of every
// node's dissipated power,
//
//	T_i = ambient + Σ_j D[i][j] · W_j
//
// where D captures rack adjacency and airflow recirculation. A
// first-order thermal inertia smooths step changes.
package thermal

import (
	"fmt"
	"math"
)

// Matrix is a heat-recirculation matrix in °C per watt: D[i][j] is the
// temperature rise at node i's inlet per watt dissipated by node j.
type Matrix [][]float64

// Validate checks shape and non-negativity.
func (d Matrix) Validate() error {
	n := len(d)
	if n == 0 {
		return fmt.Errorf("thermal: empty matrix")
	}
	for i, row := range d {
		if len(row) != n {
			return fmt.Errorf("thermal: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("thermal: D[%d][%d] = %v invalid", i, j, v)
			}
		}
	}
	return nil
}

// UniformRack builds a recirculation matrix for n nodes arranged in a
// single row of racks of rackSize nodes: a node heats itself by self,
// same-rack peers by neighbor, and other racks by neighbor·decay^dist
// (rack-distance exponential decay).
func UniformRack(n, rackSize int, self, neighbor, decay float64) (Matrix, error) {
	if n <= 0 || rackSize <= 0 {
		return nil, fmt.Errorf("thermal: need positive node and rack sizes")
	}
	if self < 0 || neighbor < 0 || decay < 0 || decay > 1 {
		return nil, fmt.Errorf("thermal: invalid coefficients")
	}
	d := make(Matrix, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = self
			case i/rackSize == j/rackSize:
				d[i][j] = neighbor
			default:
				dist := math.Abs(float64(i/rackSize - j/rackSize))
				d[i][j] = neighbor * math.Pow(decay, dist)
			}
		}
	}
	return d, nil
}

// Monitor tracks smoothed per-node inlet temperatures.
type Monitor struct {
	Ambient float64 // cooled supply temperature, °C
	D       Matrix
	// Alpha is the first-order smoothing factor per update in (0,1];
	// 1 means no inertia.
	Alpha float64

	temps  []float64
	inited bool
}

// NewMonitor builds a monitor; temperatures start at ambient.
func NewMonitor(ambient float64, d Matrix, alpha float64) (*Monitor, error) {
	m := &Monitor{Ambient: ambient, D: d, Alpha: alpha, temps: make([]float64, len(d))}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate reports whether the monitor is usable: a coherent matrix,
// a sane smoothing factor, and an allocated temperature buffer. A
// Monitor assembled by struct literal fails the last check — use
// NewMonitor.
func (m *Monitor) Validate() error {
	if err := m.D.Validate(); err != nil {
		return err
	}
	if m.Alpha <= 0 || m.Alpha > 1 {
		return fmt.Errorf("thermal: alpha %v outside (0,1]", m.Alpha)
	}
	if len(m.temps) != len(m.D) {
		return fmt.Errorf("thermal: monitor temperature buffer unallocated (use NewMonitor)")
	}
	return nil
}

// Update folds in the current per-node draws (watts, same index space
// as D) and returns the smoothed inlet temperatures. The slice is
// reused across calls; callers must not retain it.
func (m *Monitor) Update(watts []float64) ([]float64, error) {
	if len(watts) != len(m.D) {
		return nil, fmt.Errorf("thermal: %d watt readings for %d nodes", len(watts), len(m.D))
	}
	for i := range m.temps {
		steady := m.Ambient
		for j, w := range watts {
			steady += m.D[i][j] * w
		}
		if !m.inited {
			m.temps[i] = steady
		} else {
			m.temps[i] += m.Alpha * (steady - m.temps[i])
		}
	}
	m.inited = true
	return m.temps, nil
}

// Temps returns the current temperatures (ambient before the first
// update).
func (m *Monitor) Temps() []float64 {
	if !m.inited {
		out := make([]float64, len(m.D))
		for i := range out {
			out[i] = m.Ambient
		}
		return out
	}
	return m.temps
}

// Max returns the hottest inlet temperature — the room signal the
// §IV-C administrator rules threshold on.
func (m *Monitor) Max() float64 {
	max := m.Ambient
	for _, t := range m.Temps() {
		if t > max {
			max = t
		}
	}
	return max
}

// Mean returns the average inlet temperature.
func (m *Monitor) Mean() float64 {
	ts := m.Temps()
	sum := 0.0
	for _, t := range ts {
		sum += t
	}
	return sum / float64(len(ts))
}
