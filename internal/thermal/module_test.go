package thermal

import (
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/estvec"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

func thermalTasks(t *testing.T, n int) []workload.Task {
	t.Helper()
	burst := n
	if burst > 6 {
		burst = 6
	}
	tasks, err := workload.BurstThenRate{Total: n, Burst: burst, Rate: 0.05, Ops: 8e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

// TestModuleMeasuresHeatFromLoad runs a loaded scenario and requires
// the room model to have seen heat above ambient, fed purely from the
// control surface's per-node draws.
func TestModuleMeasuresHeatFromLoad(t *testing.T) {
	platform := cluster.MustPlatform(cluster.NewNodes("taurus", 4))
	d, err := UniformRack(4, 2, 0.01, 0.002, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(21, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Monitor: mon}
	res, err := sim.Run(sim.NewScenario(platform, thermalTasks(t, 24),
		sim.WithSeed(2),
		sim.WithExplore(),
		sim.WithTick(20),
		sim.WithModules(mod),
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 24 {
		t.Fatalf("completed %d of 24", res.Completed)
	}
	if mod.MaxSeenC() <= 21 {
		t.Errorf("max inlet %v °C never rose above ambient despite full load", mod.MaxSeenC())
	}
	if _, ok := mod.TempC("taurus-0"); !ok {
		t.Error("no measurement recorded for taurus-0")
	}
}

// TestModuleMatrixMustMatchPlatform: Init pins the matrix shape to the
// platform.
func TestModuleMatrixMustMatchPlatform(t *testing.T) {
	platform := cluster.MustPlatform(cluster.NewNodes("taurus", 3))
	d, err := UniformRack(2, 2, 0.01, 0.002, 0.5) // wrong size
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(21, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(sim.NewScenario(platform, thermalTasks(t, 4),
		sim.WithModules(&Module{Monitor: mon})))
	if err == nil {
		t.Fatal("2×2 matrix on a 3-node platform accepted")
	}
}

// TestModuleRejectsStructLiteralMonitor: a Monitor assembled without
// NewMonitor has no temperature buffer; Init must fail fast instead
// of letting the first tick panic.
func TestModuleRejectsStructLiteralMonitor(t *testing.T) {
	platform := cluster.MustPlatform(cluster.NewNodes("taurus", 2))
	d, err := UniformRack(2, 2, 0.01, 0.002, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(sim.NewScenario(platform, thermalTasks(t, 4),
		sim.WithTick(20),
		sim.WithModules(&Module{Monitor: &Monitor{Ambient: 21, D: d, Alpha: 0.5}})))
	if err == nil {
		t.Fatal("struct-literal monitor accepted")
	}
}

// TestModuleWrapRanksCoolFirst exercises the election wrapper: hot
// servers sort behind cool ones, unmeasured servers fail open as cool.
func TestModuleWrapRanksCoolFirst(t *testing.T) {
	m := &Module{
		Monitor:   &Monitor{},
		Threshold: 25,
		temps:     map[string]float64{"hot": 30, "cool": 22},
	}
	pol := m.WrapPolicy(0, workload.Task{}, sched.New(sched.Random))
	hot := estvec.New("hot")
	cool := estvec.New("cool")
	unknown := estvec.New("unknown")
	if !pol.Less(cool, hot) || pol.Less(hot, cool) {
		t.Error("cool server must rank before hot")
	}
	if pol.Less(hot, unknown) {
		t.Error("unmeasured server must be treated as cool")
	}
	if pol.Name() != "THERMAL(RANDOM)" {
		t.Errorf("wrapper name %q", pol.Name())
	}
	// Threshold 0 keeps the module monitor-only.
	m.Threshold = 0
	base := sched.New(sched.Random)
	if got := m.WrapPolicy(0, workload.Task{}, base); got != base {
		t.Error("monitor-only module must pass the base policy through")
	}
}
