package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"greensched/internal/estvec"
	"greensched/internal/sched"
)

func TestMatrixValidate(t *testing.T) {
	good := Matrix{{0.01, 0.002}, {0.002, 0.01}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Matrix{
		{},                          // empty
		{{0.1, 0.2}},                // not square
		{{0.1, -0.1}, {0.1, 0.1}},   // negative
		{{math.NaN(), 0}, {0, 0.1}}, // NaN
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d: invalid matrix accepted", i)
		}
	}
}

func TestUniformRackStructure(t *testing.T) {
	d, err := UniformRack(6, 2, 0.01, 0.004, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d[0][0] != 0.01 {
		t.Fatalf("self coupling = %v", d[0][0])
	}
	if d[0][1] != 0.004 {
		t.Fatalf("same-rack coupling = %v", d[0][1])
	}
	// Nodes 0 and 2 are one rack apart: neighbor × decay.
	if d[0][2] != 0.002 {
		t.Fatalf("adjacent-rack coupling = %v, want 0.002", d[0][2])
	}
	// Two racks apart: decay².
	if d[0][4] != 0.001 {
		t.Fatalf("two-rack coupling = %v, want 0.001", d[0][4])
	}
	if _, err := UniformRack(0, 2, 1, 1, 0.5); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := UniformRack(4, 2, 1, 1, 2); err == nil {
		t.Fatal("decay > 1 accepted")
	}
}

func TestMonitorSteadyState(t *testing.T) {
	d := Matrix{{0.05, 0.01}, {0.01, 0.05}}
	m, err := NewMonitor(20, d, 1) // no inertia
	if err != nil {
		t.Fatal(err)
	}
	temps, err := m.Update([]float64{200, 100})
	if err != nil {
		t.Fatal(err)
	}
	// T0 = 20 + 0.05·200 + 0.01·100 = 31; T1 = 20 + 2 + 5 = 27.
	if math.Abs(temps[0]-31) > 1e-12 || math.Abs(temps[1]-27) > 1e-12 {
		t.Fatalf("temps = %v, want [31 27]", temps)
	}
	if m.Max() != 31 {
		t.Fatalf("Max = %v", m.Max())
	}
	if m.Mean() != 29 {
		t.Fatalf("Mean = %v", m.Mean())
	}
}

func TestMonitorInertia(t *testing.T) {
	d := Matrix{{0.1}}
	m, _ := NewMonitor(20, d, 0.5)
	// First update initializes to steady state directly.
	temps, _ := m.Update([]float64{100})
	if temps[0] != 30 {
		t.Fatalf("initial temp = %v, want 30", temps[0])
	}
	// Load vanishes: temperature decays halfway per update.
	temps, _ = m.Update([]float64{0})
	if temps[0] != 25 {
		t.Fatalf("after decay = %v, want 25", temps[0])
	}
	temps, _ = m.Update([]float64{0})
	if temps[0] != 22.5 {
		t.Fatalf("after second decay = %v, want 22.5", temps[0])
	}
}

func TestMonitorValidation(t *testing.T) {
	d := Matrix{{0.1}}
	if _, err := NewMonitor(20, Matrix{}, 1); err == nil {
		t.Fatal("invalid matrix accepted")
	}
	if _, err := NewMonitor(20, d, 0); err == nil {
		t.Fatal("zero alpha accepted")
	}
	if _, err := NewMonitor(20, d, 1.5); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	m, _ := NewMonitor(20, d, 1)
	if _, err := m.Update([]float64{1, 2}); err == nil {
		t.Fatal("mismatched watt vector accepted")
	}
}

func TestMonitorTempsBeforeUpdate(t *testing.T) {
	m, _ := NewMonitor(21, Matrix{{0.1}, {0.1}}[:1], 1)
	ts := m.Temps()
	if len(ts) != 1 || ts[0] != 21 {
		t.Fatalf("pre-update temps = %v", ts)
	}
	if m.Max() != 21 || m.Mean() != 21 {
		t.Fatal("pre-update aggregates wrong")
	}
}

func TestAwarePolicyPrefersCoolNodes(t *testing.T) {
	inner := sched.New(sched.Power)
	p := AwarePolicy{Inner: inner, Threshold: 25}
	cool := estvec.New("cool").Set(estvec.TagPowerW, 300).Set(estvec.TagFlops, 1e9).
		SetBool(estvec.TagActive, true).Set(TagInletTemp, 22)
	hot := estvec.New("hot").Set(estvec.TagPowerW, 100).Set(estvec.TagFlops, 1e9).
		SetBool(estvec.TagActive, true).Set(TagInletTemp, 28)
	// Despite worse power, the cool node ranks first.
	if !p.Less(cool, hot) || p.Less(hot, cool) {
		t.Fatal("thermal policy must rank cool nodes first")
	}
	// Both cool: inner policy decides.
	hot.Set(TagInletTemp, 20)
	if !p.Less(hot, cool) {
		t.Fatal("within the cool group POWER must decide")
	}
	// Missing sensor = treated cool.
	noSensor := estvec.New("nosensor").Set(estvec.TagPowerW, 50).Set(estvec.TagFlops, 1e9).
		SetBool(estvec.TagActive, true)
	if !p.Less(noSensor, cool) {
		t.Fatal("sensorless node should compete in the cool group by power")
	}
	if p.Name() != "THERMAL(POWER)" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// Property: temperatures are monotone in load — more watts anywhere
// never cools any node (non-negative recirculation).
func TestPropertyMonotoneInLoad(t *testing.T) {
	f := func(w1, w2, extra uint8) bool {
		d, _ := UniformRack(3, 2, 0.02, 0.005, 0.5)
		m1, _ := NewMonitor(20, d, 1)
		m2, _ := NewMonitor(20, d, 1)
		base := []float64{float64(w1), float64(w2), 50}
		more := []float64{float64(w1) + float64(extra), float64(w2), 50}
		t1, _ := m1.Update(base)
		t2, _ := m2.Update(more)
		for i := range t1 {
			if t2[i] < t1[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMonitorUpdate(b *testing.B) {
	d, _ := UniformRack(64, 8, 0.02, 0.005, 0.6)
	m, _ := NewMonitor(20, d, 0.3)
	watts := make([]float64, 64)
	for i := range watts {
		watts[i] = float64(100 + i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Update(watts)
	}
}
