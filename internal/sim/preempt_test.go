package sim

import (
	"math"
	"strings"
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/sched"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// preemptCatalog resolves the "hard" class used across these tests:
// explicit per-task deadlines, hard-drop value.
func preemptCatalog() sla.Catalog {
	return sla.Catalog{"hard": {Name: "hard", Curve: sla.HardDrop{}}}
}

// TestPreemptDisplacesBatchForUrgent: on a saturated single-slot node,
// a deadline-urgent arrival checkpoints the running batch task, runs
// immediately and meets its deadline; the batch task restarts with its
// progress retained minus the restart penalty and still completes.
func TestPreemptDisplacesBatchForUrgent(t *testing.T) {
	// taurus: 9e9 flops/core. Batch: 9e12 ops = 1000 s. Urgent: 9e10
	// ops = 10 s, due at t=100, arriving at t=50.
	tasks := []workload.Task{
		{ID: 0, Ops: 9e12, Submit: 0},
		{ID: 1, Ops: 9e10, Submit: 50, Deadline: 100, Value: 2, Class: "hard"},
	}
	res, err := Run(Config{
		Platform:     cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		SLA:          &sla.Config{Catalog: preemptCatalog()},
		Preemption:   &sla.Preemption{RestartPenaltyFrac: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.DeadlineMisses != 0 {
		t.Fatalf("completed %d, misses %d; want 2, 0", res.Completed, res.DeadlineMisses)
	}
	if res.Preemptions != 1 {
		t.Fatalf("preemptions %d, want 1", res.Preemptions)
	}
	// Checkpoint at t=50: 4.5e11 ops done, half re-executed.
	if want := 0.5 * 4.5e11; math.Abs(res.PreemptRedoneOps-want) > 1 {
		t.Fatalf("redone ops %v, want %v", res.PreemptRedoneOps, want)
	}
	var batch, urgent TaskRecord
	for _, rec := range res.Records {
		if rec.ID == 0 {
			batch = rec
		} else {
			urgent = rec
		}
	}
	if urgent.Start != 50 || urgent.Finish != 60 || urgent.Preemptions != 0 {
		t.Fatalf("urgent record %+v; want immediate 50→60 run", urgent)
	}
	if urgent.EarnedUSD != 2 {
		t.Fatalf("urgent earned %v, want full value 2", urgent.EarnedUSD)
	}
	// Batch restarts at t=60 with 9e12−4.5e11+2.25e11 = 8.775e12 ops
	// left (975 s).
	if batch.Preemptions != 1 {
		t.Fatalf("batch record preemptions %d, want 1", batch.Preemptions)
	}
	if batch.Start != 60 || math.Abs(batch.Finish-1035) > 1e-6 {
		t.Fatalf("batch record %+v; want restart 60→1035", batch)
	}
	// The preempted segment still charged its joules: the batch task's
	// share covers both segments, far above the urgent task's 10 s.
	if batch.EnergyShareJ <= 50*urgent.EnergyShareJ {
		t.Fatalf("batch share %v J does not cover the preempted segment (urgent %v J)",
			batch.EnergyShareJ, urgent.EnergyShareJ)
	}
	sum := batch.EnergyShareJ + urgent.EnergyShareJ
	if sum <= 0 || sum > float64(res.EnergyJ)*(1+1e-9) {
		t.Fatalf("attributed %v J outside (0, platform total %v J]", sum, res.EnergyJ)
	}
}

// TestPreemptEnergyConservation: on the identical trace, the sum of
// per-task energy shares (preempted segments included) stays within 1%
// of the non-preemptive attribution — preemption moves joules between
// records, it must not mint or lose them.
func TestPreemptEnergyConservation(t *testing.T) {
	tasks := []workload.Task{
		{ID: 0, Ops: 9e12, Submit: 0},
		{ID: 1, Ops: 9e10, Submit: 50, Deadline: 100, Value: 2, Class: "hard"},
	}
	base := Config{
		Platform:     cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		SLA:          &sla.Config{Catalog: preemptCatalog()},
	}
	attributed := func(cfg Config) float64 {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, rec := range res.Records {
			sum += rec.EnergyShareJ
		}
		if sum <= 0 || sum > float64(res.EnergyJ)*(1+1e-9) {
			t.Fatalf("attributed %v J outside (0, %v J]", sum, res.EnergyJ)
		}
		return sum
	}
	plain := attributed(base)
	withPre := base
	// A perfect checkpoint executes the same total work, so the
	// attributed joules must match the non-preemptive run.
	withPre.Preemption = &sla.Preemption{RestartPenaltyFrac: 0}
	preempted := attributed(withPre)
	if rel := math.Abs(preempted-plain) / plain; rel > 0.01 {
		t.Fatalf("attributed energy drifted %.2f%% under preemption (%v J vs %v J)",
			rel*100, preempted, plain)
	}
}

// TestPreemptRespectsVictimDeadline: a victim whose own deadline the
// restart would breach is untouchable — the urgent task waits (and
// misses) rather than manufacturing a new SLA breach.
func TestPreemptRespectsVictimDeadline(t *testing.T) {
	// Victim: 1000 s task due at t=1005 — displacing it (10 s urgent +
	// 950 s remainder ⇒ finish 1010) would breach it by 5 s.
	tasks := []workload.Task{
		{ID: 0, Ops: 9e12, Submit: 0, Deadline: 1005, Value: 1, Class: "hard"},
		{ID: 1, Ops: 9e10, Submit: 50, Deadline: 100, Value: 2, Class: "hard"},
	}
	res, err := Run(Config{
		Platform:     cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		SLA:          &sla.Config{Catalog: preemptCatalog()},
		Preemption:   &sla.Preemption{RestartPenaltyFrac: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 0 {
		t.Fatalf("preempted an unsafe victim (%d preemptions)", res.Preemptions)
	}
	for _, rec := range res.Records {
		switch rec.ID {
		case 0:
			if rec.Finish > rec.Deadline {
				t.Fatalf("victim missed its deadline: %+v", rec)
			}
		case 1:
			if rec.Finish <= rec.Deadline {
				t.Fatalf("urgent task met its deadline without a slot: %+v", rec)
			}
		}
	}
	if res.DeadlineMisses != 1 {
		t.Fatalf("misses %d, want exactly the urgent task", res.DeadlineMisses)
	}
}

// TestPreemptFullRestartPenalty: RestartPenaltyFrac 1 models no
// checkpoint at all — the victim restarts from scratch and every
// completed op is redone.
func TestPreemptFullRestartPenalty(t *testing.T) {
	tasks := []workload.Task{
		{ID: 0, Ops: 9e12, Submit: 0},
		{ID: 1, Ops: 9e10, Submit: 50, Deadline: 100, Value: 2, Class: "hard"},
	}
	res, err := Run(Config{
		Platform:     cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		SLA:          &sla.Config{Catalog: preemptCatalog()},
		Preemption:   &sla.Preemption{RestartPenaltyFrac: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Fatalf("preemptions %d, want 1", res.Preemptions)
	}
	if want := 4.5e11; math.Abs(res.PreemptRedoneOps-want) > 1 {
		t.Fatalf("redone ops %v, want every completed op (%v)", res.PreemptRedoneOps, want)
	}
	for _, rec := range res.Records {
		if rec.ID == 0 && math.Abs(rec.Finish-1060) > 1e-6 {
			t.Fatalf("batch finish %v, want 1060 (full 1000 s re-run from t=60)", rec.Finish)
		}
	}
}

// TestControlPreemptSurface: a controller can inspect running tasks
// and checkpoint one; the freed slot immediately drains the queue, and
// the guard rails (unknown node/task, zero progress) hold.
func TestControlPreemptSurface(t *testing.T) {
	// Batch runs 0→1000; the deadline task queues at t=10 with a loose
	// deadline (t=2000), so the arrival path leaves it alone.
	tasks := []workload.Task{
		{ID: 0, Ops: 9e12, Submit: 0},
		{ID: 1, Ops: 9e10, Submit: 10, Deadline: 2000, Value: 2, Class: "hard"},
	}
	preempted := false
	var errs []string
	res, err := Run(Config{
		Platform:     cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		SLA:          &sla.Config{Catalog: preemptCatalog()},
		Preemption:   &sla.Preemption{RestartPenaltyFrac: 0.5},
		ControlEvery: 100,
		OnControl: func(now float64, ctl Control) {
			if preempted {
				return
			}
			views := ctl.Running("taurus-0")
			if len(views) != 1 {
				t.Fatalf("running views %+v, want the batch task", views)
			}
			v := views[0]
			if v.TaskID != 0 || v.Deadline != 0 || v.Started != 0 {
				t.Fatalf("victim view %+v", v)
			}
			// At t=100: 9e11 ops done, half redone ⇒ 50 s at 9e9 flops.
			if math.Abs(v.RedoSec-50) > 1e-6 || math.Abs(v.RemainingSec-900) > 1e-6 {
				t.Fatalf("victim view redo %v s remaining %v s, want 50/900", v.RedoSec, v.RemainingSec)
			}
			for _, bad := range []error{
				must(ctl.Preempt("nope-0", 0)),
				must(ctl.Preempt("taurus-0", 99)),
			} {
				errs = append(errs, bad.Error())
			}
			if err := ctl.Preempt("taurus-0", 0); err != nil {
				t.Fatalf("Preempt: %v", err)
			}
			// The slot went to the queued deadline task; the fresh
			// segment has zero progress and must refuse a checkpoint.
			if err := ctl.Preempt("taurus-0", 1); err == nil {
				t.Fatal("zero-progress segment preempted")
			}
			preempted = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 {
		t.Fatalf("error cases %v", errs)
	}
	if res.Preemptions != 1 || res.DeadlineMisses != 0 {
		t.Fatalf("preemptions %d misses %d", res.Preemptions, res.DeadlineMisses)
	}
	for _, rec := range res.Records {
		switch rec.ID {
		case 1: // drained from the queue the instant the slot freed
			if rec.Start != 100 || math.Abs(rec.Finish-110) > 1e-6 {
				t.Fatalf("queued task record %+v, want 100→110", rec)
			}
		case 0: // 9e12−9e11+4.5e11 = 8.55e12 ops = 950 s from t=110
			if rec.Start != 110 || math.Abs(rec.Finish-1060) > 1e-6 {
				t.Fatalf("batch record %+v, want 110→1060", rec)
			}
		}
	}
}

// must converts a wanted error into a value, failing loudly on nil.
func must(err error) error {
	if err == nil {
		panic("expected an error")
	}
	return err
}

// TestControlPreemptRespectsSlotOccupancy: the slot a controller
// preemption frees serves the queue first, so the safety calculus must
// charge the victim that occupancy too — a displacement whose queue
// drain would push the victim past its own deadline is refused.
func TestControlPreemptRespectsSlotOccupancy(t *testing.T) {
	// Victim: 1000 s task due at t=1150. At the t=100 tick a naive
	// check (restart after 900 s remaining ⇒ finish 1000) looks safe,
	// but the queued 300 s task runs first: 100+300+900 = 1300 > 1150.
	tasks := []workload.Task{
		{ID: 0, Ops: 9e12, Submit: 0, Deadline: 1150, Value: 1, Class: "hard"},
		{ID: 1, Ops: 2.7e12, Submit: 1},
	}
	tried := false
	res, err := Run(Config{
		Platform:     cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		SLA:          &sla.Config{Catalog: preemptCatalog()},
		Preemption:   &sla.Preemption{RestartPenaltyFrac: 0},
		ControlEvery: 100,
		OnControl: func(now float64, ctl Control) {
			if tried {
				return
			}
			tried = true
			if err := ctl.Preempt("taurus-0", 0); err == nil {
				t.Fatal("displacement allowed although the queue drain breaches the victim's deadline")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 0 || res.DeadlineMisses != 0 {
		t.Fatalf("preemptions %d misses %d; the refused displacement must leave the victim on time",
			res.Preemptions, res.DeadlineMisses)
	}
}

// TestCrashedQueuedTaskNotReadmitted: a task admitted at submission
// and then lost from a crashed node's queue migrates without passing
// the admission screen again — re-screening at the slack-poorer crash
// time would reject work the run already took on.
func TestCrashedQueuedTaskNotReadmitted(t *testing.T) {
	// Both tasks pin to taurus under static estimation; task 1 is
	// admitted at t=0 (best case 300 s against a 350 s deadline) and
	// queues. After the t=100 crash only sagittaire (≈587 s) remains:
	// a re-screen would reject, the fix runs it late instead.
	tasks := []workload.Task{
		{ID: 0, Ops: 9e12, Submit: 0},
		{ID: 1, Ops: 2.7e12, Submit: 0, Deadline: 350, Value: 5, Class: "hard"},
	}
	res, err := Run(Config{
		Platform: cluster.MustPlatform(
			cluster.NewNodes("taurus", 1),
			cluster.NewNodes("sagittaire", 1),
		),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Static:       true,
		Seed:         1,
		SlotsPerNode: 1,
		Crashes:      map[string]float64{"taurus-0": 100},
		SLA:          &sla.Config{Catalog: preemptCatalog(), Admission: &sla.Admission{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected %d: an admitted task was re-screened after the crash", res.Rejected)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d of 2", res.Completed)
	}
	if res.Crashed != 1 {
		t.Fatalf("crashed %d, want only the running execution", res.Crashed)
	}
}

// TestControlPreemptDisabled: without Config.Preemption the surface
// refuses to checkpoint anything.
func TestControlPreemptDisabled(t *testing.T) {
	called := false
	_, err := Run(Config{
		Platform:     cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        []workload.Task{{ID: 0, Ops: 9e12, Submit: 0}},
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		ControlEvery: 100,
		OnControl: func(now float64, ctl Control) {
			if called {
				return
			}
			called = true
			if err := ctl.Preempt("taurus-0", 0); err == nil ||
				!strings.Contains(err.Error(), "disabled") {
				t.Fatalf("Preempt with preemption disabled: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBestExecSkipsCrashedNodes: admission control's best-case bound
// must not rank a dead node. A deadline only the (crashed) fast node
// could meet is a provable reject, not an accepted miss.
func TestBestExecSkipsCrashedNodes(t *testing.T) {
	// taurus: 2.7e12 ops = 300 s; sagittaire: ≈587 s. Deadline 400 s
	// after submission: feasible only on taurus.
	tasks := []workload.Task{
		{ID: 0, Ops: 2.7e12, Submit: 10, Deadline: 410, Value: 5, Class: "hard"},
	}
	res, err := Run(Config{
		Platform: cluster.MustPlatform(
			cluster.NewNodes("taurus", 1),
			cluster.NewNodes("sagittaire", 1),
		),
		Policy:  sched.New(sched.GreenPerf),
		Tasks:   tasks,
		Explore: true,
		Seed:    1,
		Crashes: map[string]float64{"taurus-0": 5},
		SLA:     &sla.Config{Catalog: preemptCatalog(), Admission: &sla.Admission{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 || res.Completed != 0 {
		t.Fatalf("rejected %d completed %d; the dead fast node must not anchor admission",
			res.Rejected, res.Completed)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses %d: admitted work the platform provably could not serve", res.DeadlineMisses)
	}
}

// TestCrashCountsOnlyRunningTasks: a queued-but-never-started task
// lost no execution — it must migrate to a fresh election without
// inflating Result.Crashed or its own resubmit count.
func TestCrashCountsOnlyRunningTasks(t *testing.T) {
	// Static estimation pins both tasks to taurus (best GreenPerf):
	// task 0 runs, task 1 queues. The crash at t=50 loses exactly one
	// execution.
	tasks := []workload.Task{
		{ID: 0, Ops: 9e12, Submit: 0},
		{ID: 1, Ops: 9e11, Submit: 1},
	}
	res, err := Run(Config{
		Platform: cluster.MustPlatform(
			cluster.NewNodes("taurus", 1),
			cluster.NewNodes("sagittaire", 1),
		),
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Static:       true,
		Seed:         1,
		SlotsPerNode: 1,
		Crashes:      map[string]float64{"taurus-0": 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed != 1 {
		t.Fatalf("crashed %d, want 1: only the running task lost an execution", res.Crashed)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d of 2", res.Completed)
	}
	for _, rec := range res.Records {
		want := 0
		if rec.ID == 0 {
			want = 1
		}
		if rec.Resubmits != want {
			t.Fatalf("task %d resubmits %d, want %d", rec.ID, rec.Resubmits, want)
		}
		if rec.Server != "sagittaire-0" {
			t.Fatalf("task %d finished on %s, want the surviving node", rec.ID, rec.Server)
		}
	}
}

// TestDeadlineBoundaryExactlyOnTime pins the deadline comparison: a
// task finishing exactly at its deadline is on time in both
// Result.DeadlineMisses and the SLA ledger, with full value credited.
func TestDeadlineBoundaryExactlyOnTime(t *testing.T) {
	// 9e11 ops on taurus = exactly 100 s; submit 0, deadline 100.
	tasks := []workload.Task{
		{ID: 0, Ops: 9e11, Submit: 0, Deadline: 100, Value: 3, Class: "hard"},
	}
	res, err := Run(Config{
		Platform: cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:   sched.New(sched.GreenPerf),
		Tasks:    tasks,
		Explore:  true,
		Seed:     1,
		SLA:      &sla.Config{Catalog: preemptCatalog()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Records[0]
	if rec.Start != 0 || rec.Finish != 100 {
		t.Fatalf("record %+v, want an exact 0→100 run", rec)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("DeadlineMisses %d for a finish exactly at the deadline", res.DeadlineMisses)
	}
	if res.SLA.Misses != 0 || res.SLA.OnTime != 1 {
		t.Fatalf("ledger misses %d on-time %d; counters diverge at the boundary",
			res.SLA.Misses, res.SLA.OnTime)
	}
	if rec.EarnedUSD != 3 || res.SLA.EarnedUSD != 3 {
		t.Fatalf("earned %v / %v, want the full value at the boundary",
			rec.EarnedUSD, res.SLA.EarnedUSD)
	}
}
