// Package sim is the deterministic discrete-event simulator that
// executes the paper's experiments: it drives a cluster.Platform
// through the DIET scheduling loop (estimation vectors → plug-in
// policy sort → SED election → execution) on virtual time, with exact
// piecewise-constant energy accounting and the dynamic learning of
// power/performance estimates described in §III-A.
//
// The simulator replaces the GRID'5000 testbed, not the scheduler: the
// policy, selection and estimation code paths are the same ones the
// live middleware (package middleware) uses.
//
// Cross-cutting concerns — carbon accounting, SLA machinery,
// preemption, power-management controllers, budget tracking, thermal
// monitoring — attach to a run as a stack of Module values
// (Config.Modules, or NewScenario with functional options); see
// module.go. The legacy one-slot Config hooks remain as thin adapters
// onto that path.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"greensched/internal/carbon"
	"greensched/internal/cluster"
	"greensched/internal/estvec"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/simtime"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	Platform *cluster.Platform
	Policy   sched.Policy
	Tasks    []workload.Task

	// QueueFactor bounds per-SED backlog (see sched.Selector); 0
	// means the default 1.0.
	QueueFactor float64
	// RankAll elects purely on policy order across free and
	// queued-under-cap servers (see sched.Selector.RankAll); used
	// with score-based policies whose ordering prices waiting.
	RankAll bool
	// Explore enables the learning phase (ignored — always off — for
	// the RANDOM policy, which needs no estimates).
	Explore bool
	// EstimatorWindow is the moving-average window in requests; 0
	// means the default 64.
	EstimatorWindow int
	// SlotsPerNode caps concurrent tasks per node below its core
	// count; §IV-B limits "each server ... to the computation of one
	// task". 0 means one slot per core.
	SlotsPerNode int

	// Static seeds every estimator from a noiseless initial benchmark
	// instead of learning dynamically (the paper's first, static
	// approach; kept for the ablation bench).
	Static bool

	// Seed drives every stochastic element (RANDOM draws, jitter,
	// meter faults).
	Seed int64
	// MeterNoiseW / MeterDropout configure wattmeter fault injection.
	MeterNoiseW  float64
	MeterDropout float64
	// ExecJitter adds a relative uniform ±jitter to task execution
	// times (hardware variance).
	ExecJitter float64
	// Contention slows a task down by Contention×(co-runners/cores)
	// — memory-subsystem interference on loaded nodes. It makes the
	// dynamic estimator's flops readings load-dependent, which is
	// what spreads same-cluster rankings in practice (Figs. 2–3 show
	// the whole preferred cluster used, not a single node).
	Contention float64

	// Crashes maps node names to crash times; running tasks are lost
	// and resubmitted by the client.
	Crashes map[string]float64

	// LegacyKernel runs the seed scheduling kernel: one arrival event
	// per task, sort-based wait estimates, and freshly allocated
	// estimation vectors per election. The default event-heap kernel
	// replaces those with an arrival cursor, an incremental min-heap
	// wait estimate and reusable scratch buffers — byte-identical
	// Results, verified by the cross-engine equivalence tests. The flag
	// exists for those tests; it will be removed once the legacy path
	// has no remaining callers.
	LegacyKernel bool

	// Modules is the run's extension stack: every cross-cutting
	// concern (carbon accounting, SLA machinery, preemption,
	// power-management controllers, budget tracking, thermal
	// monitoring) attaches as one Module, and any number of them
	// compose in one run. Hooks run in stack order; see Module. The
	// legacy one-slot fields below (Carbon, SLA, Preemption,
	// PolicyFunc, OnFinish, OnControl) still work — NewRunner converts
	// each into its equivalent module and prepends it to this stack —
	// but new code should pass modules directly (or use NewScenario).
	Modules []Module

	// Carbon, when set, attaches a grid carbon-intensity profile to
	// the platform: every node's exact energy accounting is integrated
	// against its site's signal into grams of CO2 (Result.CO2Grams),
	// and SEDs report their site's current intensity and renewable
	// fraction in their estimation vectors so carbon-aware policies
	// can rank on them.
	//
	// Deprecated: equivalent to appending &CarbonModule{Profile: …} to
	// Modules; kept as a working adapter.
	Carbon *carbon.Profile

	// SampleEvery records a platform power sample every so many
	// seconds (0 disables the series).
	SampleEvery float64

	// OnFinish, when set, observes every completed task record as it
	// happens (virtual time). External controllers — e.g. a budget
	// tracker charging per-task energy — hook in here.
	//
	// Deprecated: equivalent to a Modules entry of
	// &HookModule{OnFinishFunc: …}; kept as a working adapter.
	OnFinish func(TaskRecord)

	// OnControl, when set with ControlEvery > 0, runs every
	// ControlEvery virtual seconds with a Control surface over the
	// platform: the hook for node power management policies such as
	// idle-timeout consolidation (package consolidation). Ticks stop
	// once all tasks complete.
	//
	// Deprecated: equivalent to a Modules entry of
	// &HookModule{OnTickFunc: …}; kept as a working adapter.
	// ControlEvery itself remains live — it is the tick cadence of
	// every module's OnTick.
	OnControl    func(now float64, ctl Control)
	ControlEvery float64

	// RetryEvery is the client back-off between election attempts for
	// a request no server can accept (all candidacies revoked or
	// everything powered off); 0 means the default 1 second.
	// Controllers that defer work for hours (carbon windows) should
	// raise it so the retry traffic stays proportionate.
	RetryEvery float64

	// SLA, when set, turns on service-level awareness: task classes
	// resolve to deadlines/values/penalty curves, admission control
	// screens first submissions (rejected tasks never run and forfeit
	// their value), SED queues drain under the configured discipline
	// (EDF, VALUE-DENSITY) instead of FIFO, and Result carries the
	// revenue/penalty ledger plus per-task slack.
	//
	// Deprecated: equivalent to appending &SLAModule{Config: …} to
	// Modules; kept as a working adapter.
	SLA *sla.Config

	// Preemption, when set, relaxes the run-to-completion invariant:
	// a deadline-urgent arrival may checkpoint and displace a running
	// task when the elected SED's own slack math says waiting would
	// breach the deadline but preempting would not, and controllers may
	// issue Control.Preempt. The checkpointed fraction of the victim's
	// Ops is retained minus the configured restart penalty; the victim
	// re-enters election with the remainder. A victim whose own
	// deadline the restart would breach is never displaced
	// (sla.SafeToDisplace). nil keeps tasks non-preemptible.
	//
	// Deprecated: equivalent to appending &PreemptModule{Preemption: …}
	// to Modules; kept as a working adapter.
	Preemption *sla.Preemption

	// PolicyFunc, when set, builds the election policy per arriving
	// task — the hook SLA-aware runs use to wrap Policy with
	// sched.DeadlineAware or SLAWeightedPolicy for the task's own
	// deadline. Config.Policy still names the run and serves retries.
	//
	// Deprecated: equivalent to a Modules entry whose WrapPolicy
	// ignores its base (&HookModule{WrapPolicyFunc: …}), or to
	// SLAModule.WrapDeadline for the deadline-aware case; kept as a
	// working adapter.
	PolicyFunc func(now float64, t workload.Task) sched.Policy
}

func (c *Config) defaults() error {
	if c.Platform == nil || len(c.Platform.Nodes) == 0 {
		return fmt.Errorf("sim: config needs a platform")
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: config needs a policy")
	}
	if len(c.Tasks) == 0 {
		return fmt.Errorf("sim: config needs tasks")
	}
	if c.QueueFactor <= 0 {
		c.QueueFactor = 1.0
	}
	if c.EstimatorWindow <= 0 {
		c.EstimatorWindow = 64
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 1.0
	}
	return nil
}

// TaskRecord is the fate of one task.
type TaskRecord struct {
	ID      int
	Server  string
	Cluster string
	Submit  float64
	Start   float64
	Finish  float64
	// MeanPowerW is the wattmeter-measured mean node draw over the
	// task's execution (what the dynamic estimator consumed).
	MeanPowerW float64
	// Resubmits counts crash-induced re-executions.
	Resubmits int
	// Preemptions counts how many times the task was checkpointed and
	// displaced before this completion; Start and Exec() then describe
	// the final execution segment only, while EnergyShareJ and CO2Grams
	// still cover every segment.
	Preemptions int

	// Deadline is the task's effective absolute deadline (class
	// defaults resolved; 0 = none) and Class its SLA class.
	Deadline float64
	Class    string
	// EarnedUSD is the value credited through the penalty curve
	// (negative = contractual penalty); zero without Config.SLA.
	EarnedUSD float64
	// EnergyShareJ is the task's share of its node's measured energy
	// over the execution window: mean node draw × duration ÷ mean
	// co-running task count, so concurrent tasks split the node's
	// joules instead of each being charged all of them.
	EnergyShareJ float64
	// CO2Grams integrates EnergyShareJ through the site's intensity
	// signal over the execution window; zero without Config.Carbon.
	CO2Grams float64
}

// Wait returns queueing delay (start − submit).
func (r TaskRecord) Wait() float64 { return r.Start - r.Submit }

// Exec returns execution time (finish − start).
func (r TaskRecord) Exec() float64 { return r.Finish - r.Start }

// Slack returns deadline − finish (negative = miss); ok is false for
// best-effort tasks.
func (r TaskRecord) Slack() (float64, bool) {
	if r.Deadline <= 0 {
		return 0, false
	}
	return r.Deadline - r.Finish, true
}

// Rejection is one admission-control refusal: the task never ran and
// its full value was forfeited.
type Rejection struct {
	ID       int
	Class    string
	ValueUSD float64
	At       float64 // submission (decision) time
}

// Point is one sample of the platform power series.
type Point struct {
	T float64
	W float64 // aggregate instantaneous draw
}

// Result aggregates one run.
type Result struct {
	Policy   string
	Makespan float64      // completion time of the last task
	EnergyJ  power.Joules // whole-platform energy over [0, makespan]

	PerNodeTasks     map[string]int
	PerNodeEnergyJ   map[string]power.Joules
	PerClusterTasks  map[string]int
	PerClusterEnergy map[string]power.Joules

	// CO2Grams is the whole-platform emissions over the run, with
	// per-node and per-cluster breakdowns. All zero unless
	// Config.Carbon is set.
	CO2Grams      float64
	PerNodeCO2G   map[string]float64
	PerClusterCO2 map[string]float64

	Records []TaskRecord
	Series  []Point

	Completed int
	Crashed   int // running task executions lost to crashes (each resubmitted)

	// Preemptions counts checkpoint/displace events (arrival-path and
	// Control.Preempt alike); PreemptRedoneOps sums the completed work
	// the restart penalty forced victims to re-execute.
	Preemptions      int
	PreemptRedoneOps float64

	// Boots and Shutdowns count controller-issued power transitions
	// (zero unless a module — or the legacy Config.OnControl hook —
	// drives Control.PowerOn/PowerOff).
	Boots     int
	Shutdowns int

	// DeadlineMisses counts completions past their effective deadline;
	// Rejected counts admission refusals (each listed in Rejections).
	DeadlineMisses int
	Rejected       int
	Rejections     []Rejection

	// SLA is the revenue/penalty ledger summary; nil without
	// Config.SLA.
	SLA *sla.Summary
}

// JoulesPerTask returns whole-platform energy per completed task.
func (r *Result) JoulesPerTask() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.EnergyJ) / float64(r.Completed)
}

// GramsPerTask returns whole-platform CO2 per completed task — the
// per-request carbon attribution next to JoulesPerTask.
func (r *Result) GramsPerTask() float64 {
	if r.Completed == 0 {
		return 0
	}
	return r.CO2Grams / float64(r.Completed)
}

// MeanWait returns the average queueing delay across completed tasks.
func (r *Result) MeanWait() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	sum := 0.0
	for _, rec := range r.Records {
		sum += rec.Wait()
	}
	return sum / float64(len(r.Records))
}

// sedState is one SED: a node plus its queue, estimator and meter.
type sedState struct {
	idx   int
	node  *cluster.Node
	est   *power.Estimator
	meter *power.Wattmeter

	slots int
	// queue[qhead:] is the live backlog: FIFO dequeues advance qhead
	// in O(1) instead of memmoving the whole slice, and the backing
	// array is recycled once drained — the pending-task arena.
	queue   []pendingTask
	qhead   int
	running map[int]*runningTask // task ID → record

	// legacy selects the seed kernel's sort-based wait estimate (see
	// Config.LegacyKernel).
	legacy bool

	// Wait-estimate cache (event-heap kernel): avail is the reusable
	// slot-availability scratch heap; waitAbs caches the absolute time
	// a slot first frees for new work, valid while waitVer == mutVer+1
	// (the +1 keeps the zero value invalid). mutVer advances on every
	// queue/running mutation (bumpWait).
	avail   []float64
	waitAbs float64
	waitVer uint64
	mutVer  uint64

	// static holds the benchmark calibration when Config.Static is
	// set; estimates then never change at runtime.
	static *cluster.Calibration

	// extPower, when an ExternalPowerModule is stacked, overrides the
	// vector's power tags with the source's reading at the current
	// virtual time; extVals is the reusable values slot so the
	// zero-alloc fill path stays allocation-free.
	extPower power.Source
	extVals  [1]float64

	// site and co2 carry the node's grid signal and emissions
	// integrator when Config.Carbon is set.
	site *carbon.SiteProfile
	co2  *carbon.Integrator

	// candidate marks the SED as eligible for new work (the adaptive
	// experiment toggles this; the placement experiments keep all
	// SEDs candidates).
	candidate bool

	// failed marks a crashed node: it stays unusable (and excluded from
	// best-case feasibility bounds) until a controller repairs it via
	// PowerOn.
	failed bool

	// idleAt is the virtual time the node last became workless; the
	// controller hook reads it to apply idle timeouts. Meaningful only
	// while running and queue are empty.
	idleAt float64

	// busyAt / busyIntegral track busy-core-seconds exactly (advanced
	// on every task start and finish); per-task energy attribution
	// divides the node's measured draw by the mean concurrency over
	// each task's window.
	busyAt       float64
	busyIntegral float64
}

// advanceBusy accrues busy-core-seconds up to now.
func (s *sedState) advanceBusy(now float64) {
	s.busyIntegral += float64(len(s.running)) * (now - s.busyAt)
	s.busyAt = now
}

type pendingTask struct {
	task      workload.Task
	resubmits int
	// waiting marks a task already counted in Runner.unplaced while it
	// retries election; parkedAt is when it started waiting (the defer
	// lifecycle event's park time).
	waiting  bool
	parkedAt float64

	// admitted marks a task that already passed the admission screen
	// (a queued task migrating off a crashed node): it must never be
	// re-screened at a later, slack-poorer time.
	admitted bool

	// preemptions counts checkpoint/displace cycles; task.Ops then
	// holds the remaining (penalty-inflated) work, and carriedJ /
	// carriedG accumulate the energy and emissions the preempted
	// segments already charged, folded into the final TaskRecord.
	preemptions int
	carriedJ    float64
	carriedG    float64
}

type runningTask struct {
	task      workload.Task
	start     float64
	finish    *simtime.Event
	resubmits int
	// busyMark is the SED's busy-core-seconds at task start; the
	// difference at finish divided by the duration is the mean
	// concurrency the energy attribution splits by.
	busyMark float64

	// plannedExec is the scheduled execution time of this segment
	// (contention and jitter applied); preemption derives the completed
	// Ops fraction from elapsed/plannedExec.
	plannedExec float64
	// Checkpoint state carried across preemptions (see pendingTask).
	preemptions int
	carriedJ    float64
	carriedG    float64
}

func (s *sedState) freeSlots() int {
	if s.node.State() != power.On {
		return 0
	}
	free := s.slots - len(s.running)
	if free < 0 {
		return 0
	}
	return free
}

// qlen returns the live backlog length.
func (s *sedState) qlen() int { return len(s.queue) - s.qhead }

// queued returns the live backlog in queue order.
func (s *sedState) queued() []pendingTask { return s.queue[s.qhead:] }

// pushQueue appends a task to the backlog.
func (s *sedState) pushQueue(p pendingTask) {
	s.queue = append(s.queue, p)
	s.bumpWait()
}

// removeQueued removes and returns the backlog entry at index i (an
// index into queued()). The head case — every FIFO dequeue — advances
// qhead in O(1); the backing array is reset once drained and compacted
// when the dead prefix dominates, so a million-task run reuses one
// arena instead of memmoving the queue on every start.
func (s *sedState) removeQueued(i int) pendingTask {
	j := s.qhead + i
	p := s.queue[j]
	if i == 0 {
		s.queue[j] = pendingTask{}
		s.qhead++
		switch {
		case s.qhead == len(s.queue):
			s.queue = s.queue[:0]
			s.qhead = 0
		case s.qhead >= 256 && s.qhead*2 >= len(s.queue):
			n := copy(s.queue, s.queue[s.qhead:])
			s.queue = s.queue[:n]
			s.qhead = 0
		}
	} else {
		copy(s.queue[j:], s.queue[j+1:])
		s.queue = s.queue[:len(s.queue)-1]
	}
	s.bumpWait()
	return p
}

// clearQueue empties the backlog (crash path), keeping the arena.
func (s *sedState) clearQueue() {
	s.queue = s.queue[:0]
	s.qhead = 0
	s.bumpWait()
}

// bumpWait invalidates the cached wait estimate; every queue or
// running-set mutation (including finish-event cancellations) must
// pass through here.
func (s *sedState) bumpWait() { s.mutVer++ }

// waitEstimate computes ws: the time a newly queued task would wait
// before starting, from the SED's exact knowledge of its running and
// queued work (§III-C assumes task durations are known to the
// scheduler).
//
// The event-heap kernel drains the backlog over a min-heap of
// slot-availability times — one sift-down per queued task instead of
// the seed kernel's full re-sort — and, when every slot is occupied,
// caches the resulting absolute first-free time until the next
// queue/running mutation: between mutations the wait seen at a later
// probe is exactly cachedFirstFree − now. Both shortcuts evolve the
// same multiset of availability times as the seed's sort loop, so the
// returned floats are bit-identical (see the equivalence tests).
func (s *sedState) waitEstimate(now float64) float64 {
	if s.legacy {
		return s.legacyWaitEstimate(now)
	}
	if s.qlen() == 0 && (s.freeSlots() > 0 || len(s.running) == 0) {
		// Free capacity — or nothing running and nothing queued, where
		// the padded availability times are all "now" either way.
		return 0
	}
	if len(s.running) >= s.slots {
		// Every slot occupied: availability times are absolute finish
		// times, independent of now, so the drained first-free time is
		// cacheable until the next mutation.
		if s.waitVer != s.mutVer+1 {
			s.waitAbs = s.firstFree(now, false)
			s.waitVer = s.mutVer + 1
		}
		if w := s.waitAbs - now; w > 0 {
			return w
		}
		return 0
	}
	// Free slots padded with "now" (a backlog on a booting/off node):
	// time-dependent, computed fresh per probe.
	if w := s.firstFree(now, true) - now; w > 0 {
		return w
	}
	return 0
}

// firstFree simulates draining the backlog over the slot-availability
// min-heap and returns the absolute time a slot first frees for a new
// task. pad fills unoccupied slots with now (the seed kernel's
// padding).
func (s *sedState) firstFree(now float64, pad bool) float64 {
	avail := s.avail[:0]
	for _, rt := range s.running {
		avail = append(avail, rt.finish.At.Seconds())
	}
	if pad {
		for len(avail) < s.slots {
			avail = append(avail, now)
		}
	}
	s.avail = avail
	floatHeapInit(avail)
	for _, p := range s.queued() {
		// start := avail[0]; the queued task occupies the earliest
		// slot, which then frees at start + exec.
		avail[0] += s.node.Spec.TaskSeconds(p.task.Ops)
		floatHeapFix(avail)
	}
	return avail[0]
}

// floatHeapInit establishes the min-heap property.
func floatHeapInit(h []float64) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		floatHeapSift(h, i)
	}
}

// floatHeapFix restores the heap after the root changed.
func floatHeapFix(h []float64) { floatHeapSift(h, 0) }

func floatHeapSift(h []float64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l] < h[m] {
			m = l
		}
		if r < len(h) && h[r] < h[m] {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// legacyWaitEstimate is the seed kernel's sort-per-queued-task wait
// estimate, retained behind Config.LegacyKernel as the equivalence
// reference.
func (s *sedState) legacyWaitEstimate(now float64) float64 {
	if s.freeSlots() > 0 && s.qlen() == 0 {
		return 0
	}
	// Slot-availability times: running tasks' finish times, padded
	// with "now" for free slots.
	avail := make([]float64, 0, s.slots)
	for _, rt := range s.running {
		avail = append(avail, rt.finish.At.Seconds())
	}
	for len(avail) < s.slots {
		avail = append(avail, now)
	}
	sort.Float64s(avail)
	// Drain the queue ahead of the hypothetical new task.
	for _, p := range s.queued() {
		start := avail[0]
		exec := s.node.Spec.TaskSeconds(p.task.Ops)
		avail[0] = start + exec
		sort.Float64s(avail)
	}
	w := avail[0] - now
	if w < 0 {
		w = 0
	}
	return w
}

// vector builds the SED's estimation vector — the default estimation
// function of the paper's plug-in scheduler, extended with the energy
// tags (§III-A: "These metrics are incorporated into DIET SED to
// populate its estimation vector using new tags").
func (s *sedState) vector(now float64, rng *rand.Rand) *estvec.Vector {
	return s.vectorFor(now, rng, false)
}

// vectorFor is vector with an optional candidacy bypass: SLA express
// traffic (sla.Config.UrgentBypass) may elect any *powered-on* node
// even while a controller has revoked its candidacy to defer
// deferrable work. Powered-off nodes stay unusable either way.
func (s *sedState) vectorFor(now float64, rng *rand.Rand, bypassCandidacy bool) *estvec.Vector {
	v := estvec.New(s.node.Spec.Name)
	s.fillVector(v, now, rng, bypassCandidacy)
	return v
}

// fillVector populates v in place — the zero-alloc spelling of
// vectorFor the event-heap kernel uses with per-SED scratch vectors.
// Both kernels run the identical Set sequence (including the
// TagRandom draw), so elections are bit-for-bit the same.
func (s *sedState) fillVector(v *estvec.Vector, now float64, rng *rand.Rand, bypassCandidacy bool) {
	v.Reset(s.node.Spec.Name).
		Set(estvec.TagFreeCores, float64(s.freeSlots())).
		Set(sched.TagCores(), float64(s.slots)).
		Set(estvec.TagQueueLen, float64(s.qlen())).
		Set(estvec.TagWaitSec, s.waitEstimate(now)).
		Set(estvec.TagBootSec, s.node.Spec.BootSec).
		Set(estvec.TagBootPowerW, s.node.Spec.BootW).
		SetBool(estvec.TagActive, (s.candidate || bypassCandidacy) && s.node.State() == power.On).
		Set(estvec.TagRandom, rng.Float64())

	if s.site != nil {
		v.Set(estvec.TagCarbonIntensity, s.site.Signal.IntensityAt(now)).
			Set(estvec.TagRenewableFrac, s.site.Signal.RenewableAt(now))
	}

	if s.static != nil {
		v.SetBool(estvec.TagKnown, true).
			Set(estvec.TagRequests, 1e9). // static: never "novice"
			Set(estvec.TagFlops, s.static.Flops).
			Set(estvec.TagPowerW, s.static.MeanWatts).
			Set(estvec.TagGreenPerf, s.static.GreenPerf())
		s.overridePower(v, now)
		return
	}

	v.SetBool(estvec.TagKnown, s.est.Known()).
		Set(estvec.TagRequests, float64(s.est.Requests()))
	if f, ok := s.est.Flops(); ok {
		v.Set(estvec.TagFlops, f)
	}
	if p, ok := s.est.Power(); ok {
		v.Set(estvec.TagPowerW, p)
	}
	if gp, ok := s.est.GreenPerf(); ok {
		v.Set(estvec.TagGreenPerf, gp)
	}
	s.overridePower(v, now)
}

// extPowerMetrics is the fixed metric name list the override sends —
// virtual time only, so trace-backed sources replay deterministically.
var extPowerMetrics = []string{power.MetricTime}

// overridePower folds the external power source's reading at virtual
// time now over the vector's power tags (and re-derives the green-perf
// ratio from the vector's own flops estimate); a source miss leaves
// the built-in estimates alone.
func (s *sedState) overridePower(v *estvec.Vector, now float64) {
	if s.extPower == nil {
		return
	}
	s.extVals[0] = now
	w, ok := s.extPower.NodePowerW(s.node.Spec.Name, extPowerMetrics, s.extVals[:])
	if !ok {
		return
	}
	v.Set(estvec.TagPowerW, float64(w))
	if f, okF := v.Get(estvec.TagFlops); okF && f > 0 {
		v.Set(estvec.TagGreenPerf, float64(w)/f)
	}
}

// Runner executes one configured simulation.
type Runner struct {
	cfg  Config
	eng  *simtime.Engine
	rng  *rand.Rand
	seds []*sedState
	sel  *sched.Selector
	res  *Result

	// mods is the effective module stack: the legacy Config hooks
	// converted into adapters, then Config.Modules.
	mods []Module
	// lobs caches the stack's LifecycleObserver implementations; empty
	// for most runs, so emitting costs one nil-slice check.
	lobs []LifecycleObserver

	lastFinish float64
	unplaced   int // submitted tasks no server could accept yet
	// waiting holds the unplaced tasks themselves (keyed by ID) so
	// controllers can see the most urgent pending deadline.
	waiting map[int]workload.Task

	// sla and pre are installed by SLAModule / PreemptModule Init (the
	// legacy Config.SLA / Config.Preemption fields arrive here through
	// their adapters).
	sla *sla.Config
	pre *sla.Preemption

	// SLA state: the effective catalog, resolved terms per task ID,
	// the revenue ledger, and the queue discipline (nil = FIFO).
	catalog sla.Catalog
	terms   map[int]sla.Terms
	ledger  *sla.Ledger
	order   sched.TaskOrder

	// Event-heap kernel scratch (nil under Config.LegacyKernel): one
	// reusable estimation vector per SED plus the candidate list and
	// per-task selector, so the election inner loop allocates nothing;
	// arrivals holds the tasks in stable (Submit, config-order) order
	// for the arrival cursor; rtFree recycles runningTask records.
	vecs       []estvec.Vector
	list       estvec.List
	selScratch sched.Selector
	arrivals   []workload.Task
	rtFree     []*runningTask
}

// resolved counts tasks whose fate is settled (completed or rejected).
func (r *Runner) resolved() int { return r.res.Completed + r.res.Rejected }

// NewRunner validates the config and builds the initial state.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	for _, t := range cfg.Tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	r := &Runner{
		cfg:     cfg,
		eng:     simtime.NewEngine(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		waiting: make(map[int]workload.Task),
		res: &Result{
			Policy: cfg.Policy.Name(),
			// Task-record arena: one completion per task in the common
			// case, so the append in onFinish never reallocates.
			Records:          make([]TaskRecord, 0, len(cfg.Tasks)),
			PerNodeTasks:     make(map[string]int),
			PerNodeEnergyJ:   make(map[string]power.Joules),
			PerClusterTasks:  make(map[string]int),
			PerClusterEnergy: make(map[string]power.Joules),
			PerNodeCO2G:      make(map[string]float64),
			PerClusterCO2:    make(map[string]float64),
		},
	}
	r.sel = &sched.Selector{Policy: cfg.Policy, QueueFactor: cfg.QueueFactor, Explore: cfg.Explore, RankAll: cfg.RankAll}
	for i, spec := range cfg.Platform.Nodes {
		meter := power.NewWattmeter(0, cfg.Seed+int64(i)+1)
		meter.NoiseW = cfg.MeterNoiseW
		meter.DropoutRate = cfg.MeterDropout
		slots := spec.Cores
		if cfg.SlotsPerNode > 0 && cfg.SlotsPerNode < slots {
			slots = cfg.SlotsPerNode
		}
		sed := &sedState{
			idx:       i,
			node:      cluster.NewNode(spec, 0, meter),
			est:       power.NewEstimator(cfg.EstimatorWindow),
			meter:     meter,
			slots:     slots,
			running:   make(map[int]*runningTask),
			candidate: true,
			legacy:    cfg.LegacyKernel,
		}
		if cfg.Static {
			cal := cluster.BenchmarkNode(spec, 1e9, 0, nil)
			sed.static = &cal
		}
		r.seds = append(r.seds, sed)
	}
	if !cfg.LegacyKernel {
		r.vecs = make([]estvec.Vector, len(r.seds))
		r.list = make(estvec.List, 0, len(r.seds))
	}
	// The module stack attaches last, over fully built platform state:
	// legacy one-slot hooks first (as adapters), then Config.Modules.
	r.mods = cfg.modules()
	for _, m := range r.mods {
		if err := m.Init(r); err != nil {
			return nil, err
		}
		if o, ok := m.(LifecycleObserver); ok {
			r.lobs = append(r.lobs, o)
		}
	}
	return r, nil
}

// emit fans one lifecycle event out to the stack's observers.
func (r *Runner) emit(ev obs.Event) {
	for _, o := range r.lobs {
		o.OnLifecycle(ev)
	}
}

// NodeNames returns the platform's node names in platform order — the
// index space Control.Nodes reports in. Modules that carry per-node
// state (e.g. a thermal matrix) validate their shape against it in
// Init.
func (r *Runner) NodeNames() []string {
	out := make([]string, len(r.seds))
	for i, sed := range r.seds {
		out[i] = sed.node.Spec.Name
	}
	return out
}

// Run executes the simulation to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// Run drives the event loop until all tasks complete.
func (r *Runner) Run() (*Result, error) {
	if r.cfg.LegacyKernel {
		// Seed kernel: one event per task. Setup-time scheduling gives
		// arrivals the lowest sequence numbers, so at any instant they
		// fire before every same-time runtime event.
		for _, task := range r.cfg.Tasks {
			task := task
			r.eng.At(simtime.Time(task.Submit), "arrival", func(now simtime.Time) {
				r.onArrival(now.Seconds(), pendingTask{task: task})
			})
		}
	} else {
		// Event-heap kernel: a single self-advancing cursor walks the
		// tasks in stable (Submit, config-order) order, draining every
		// arrival that shares an instant in one event. Front-class
		// scheduling (simtime.AtFront) preserves the seed ordering:
		// arrivals before crashes, retries, restarts and finishes at
		// the same virtual time.
		r.arrivals = make([]workload.Task, len(r.cfg.Tasks))
		copy(r.arrivals, r.cfg.Tasks)
		sort.SliceStable(r.arrivals, func(i, j int) bool {
			return r.arrivals[i].Submit < r.arrivals[j].Submit
		})
		r.scheduleArrivals(0)
	}
	for name, at := range r.cfg.Crashes {
		idx := r.cfg.Platform.Find(name)
		if idx < 0 {
			return nil, fmt.Errorf("sim: crash configured for unknown node %q", name)
		}
		sed := r.seds[idx]
		r.eng.At(simtime.Time(at), "crash", func(now simtime.Time) {
			r.onCrash(now.Seconds(), sed)
		})
	}
	if r.cfg.SampleEvery > 0 {
		r.scheduleSample(r.cfg.SampleEvery)
	}
	if r.cfg.ControlEvery > 0 && len(r.mods) > 0 {
		r.scheduleControl(r.cfg.ControlEvery)
	}
	// Budget: generous multiple of task count, to catch livelocks
	// without bounding legitimate runs.
	budget := uint64(len(r.cfg.Tasks))*64 + 1<<20
	if _, err := r.eng.Run(budget); err != nil {
		return nil, err
	}
	if r.resolved() != len(r.cfg.Tasks) {
		return nil, fmt.Errorf("sim: only %d of %d tasks resolved (stuck queue?)", r.resolved(), len(r.cfg.Tasks))
	}
	r.finalize()
	return r.res, nil
}

// scheduleArrivals arms the arrival cursor at r.arrivals[i]'s submit
// time. Each firing submits every task sharing that instant — in the
// same order the seed kernel's per-task events would have fired — then
// re-arms for the next distinct submit time.
func (r *Runner) scheduleArrivals(i int) {
	if i >= len(r.arrivals) {
		return
	}
	r.eng.AtFront(simtime.Time(r.arrivals[i].Submit), "arrival", func(t simtime.Time) {
		now := t.Seconds()
		j := i
		for j < len(r.arrivals) && r.arrivals[j].Submit == r.arrivals[i].Submit {
			r.onArrival(now, pendingTask{task: r.arrivals[j]})
			j++
		}
		r.scheduleArrivals(j)
	})
}

func (r *Runner) onArrival(now float64, p pendingTask) {
	// First submissions only (not retries, crash resubmissions,
	// crash-migrated queued tasks or preemption restarts): modules
	// observe the task, then the admission screen runs.
	if !p.waiting && !p.admitted && p.resubmits == 0 && p.preemptions == 0 {
		for _, m := range r.mods {
			m.OnArrival(now, &p.task)
		}
		// The submit event carries post-OnArrival state, so class
		// mutations are visible on the trace exactly as they reach
		// admission below.
		r.emit(obs.Event{T: now, Event: obs.EventSubmit, ID: uint64(p.task.ID), Class: p.task.Class})
		if r.sla != nil {
			// Re-resolve the task's terms so OnArrival mutations
			// (class, deadline, value) reach admission, the ledger and
			// the queue discipline. Unmutated tasks resolve to the
			// identical terms Init computed.
			r.terms[p.task.ID] = r.catalog.Resolve(p.task)
		}
		if r.sla != nil && r.sla.Admission != nil {
			terms := r.terms[p.task.ID]
			if r.sla.Admission.Decide(now, r.bestExec(p.task.Ops), terms) == sla.Reject {
				r.ledger.Reject(terms)
				r.res.Rejected++
				r.res.Rejections = append(r.res.Rejections, Rejection{
					ID: p.task.ID, Class: terms.Class, ValueUSD: terms.ValueUSD, At: now,
				})
				r.emit(obs.Event{T: now, Event: obs.EventReject, ID: uint64(p.task.ID), Class: terms.Class, Err: "admission: best case earns nothing"})
				return
			}
		}
		r.emit(obs.Event{T: now, Event: obs.EventAdmit, ID: uint64(p.task.ID), Class: p.task.Class})
	}
	// SLA express lane: deadline-carrying tasks may bypass candidacy
	// windows (controllers defer only deferrable work through them).
	bypass := r.sla != nil && r.sla.UrgentBypass && r.taskView(p.task).Deadline > 0
	var list estvec.List
	if r.cfg.LegacyKernel {
		list = make(estvec.List, 0, len(r.seds))
		for _, sed := range r.seds {
			list = append(list, sed.vectorFor(now, r.rng, bypass))
		}
	} else {
		// Zero-alloc election inner loop: refill the per-SED scratch
		// vectors in place. Nothing downstream retains the vectors
		// past this arrival (Select reads; the chosen server's name is
		// copied out), so reuse is safe.
		list = r.list[:0]
		for i, sed := range r.seds {
			v := &r.vecs[i]
			sed.fillVector(v, now, r.rng, bypass)
			list = append(list, v)
		}
		r.list = list
	}
	// Election policy: each module may wrap (or replace) the policy the
	// previous one produced, starting from the run's base policy.
	sel := r.sel
	if len(r.mods) > 0 {
		pol := r.sel.Policy
		for _, m := range r.mods {
			pol = m.WrapPolicy(now, p.task, pol)
		}
		r.selScratch = *r.sel
		r.selScratch.Policy = pol
		sel = &r.selScratch
	}
	chosen, err := sel.Select(list)
	if err != nil {
		// No candidate can take the request (all powered off):
		// retry shortly — a controller (or the adaptive experiment)
		// powers nodes back on; the placement experiments never hit
		// this. Count it once so controllers see the backlog.
		if !p.waiting {
			p.waiting = true
			p.parkedAt = now
			r.unplaced++
			r.waiting[p.task.ID] = p.task
		}
		r.eng.After(r.cfg.RetryEvery, "retry", func(t2 simtime.Time) { r.onArrival(t2.Seconds(), p) })
		return
	}
	if p.waiting {
		p.waiting = false
		r.unplaced--
		delete(r.waiting, p.task.ID)
		// Placed after waiting out closed windows / powered-off nodes:
		// the sim spelling of the live carbon deferral, emitted at
		// release with the parked duration, like the live path.
		r.emit(obs.Event{T: now, Event: obs.EventDefer, ID: uint64(p.task.ID), Class: p.task.Class, DurSec: now - p.parkedAt})
	}
	r.emit(obs.Event{T: now, Event: obs.EventElect, ID: uint64(p.task.ID), Class: p.task.Class, Server: chosen.Server})
	sed := r.seds[r.cfg.Platform.Find(chosen.Server)]
	switch {
	case sed.freeSlots() > 0:
		r.startTask(now, sed, p)
	case r.tryPreempt(now, sed, p):
		// A victim was checkpointed and the urgent task started in its
		// slot.
	default:
		sed.pushQueue(p)
	}
}

// bestExec returns the platform's best-case execution time for a task
// — the fastest node, a free core, no queue. Admission control uses
// it as the "provably cannot serve" bound. Crashed nodes are excluded:
// a dead node's speed is not capacity, and ranking it here would admit
// work whose only feasible server no longer exists. Powered-off nodes
// still count — a controller can boot them. With every node failed the
// bound is +Inf, so admission rejects deadline work outright.
func (r *Runner) bestExec(ops float64) float64 {
	best, found := 0.0, false
	for _, sed := range r.seds {
		if sed.failed {
			continue
		}
		e := sed.node.Spec.TaskSeconds(ops)
		if !found || e < best {
			best, found = e, true
		}
	}
	if !found {
		return math.Inf(1)
	}
	return best
}

func (r *Runner) startTask(now float64, sed *sedState, p pendingTask) {
	if err := sed.node.StartTask(now); err != nil {
		panic(fmt.Sprintf("sim: %v (selector bug)", err))
	}
	exec := sed.node.Spec.TaskSeconds(p.task.Ops)
	if c := r.cfg.Contention; c > 0 {
		coRunners := float64(sed.node.BusyCores()-1) / float64(sed.node.Spec.Cores)
		exec /= 1 - c*coRunners
	}
	if j := r.cfg.ExecJitter; j > 0 {
		exec *= 1 + (r.rng.Float64()*2-1)*j
	}
	sed.advanceBusy(now)
	rt := r.newRunning()
	*rt = runningTask{
		task: p.task, start: now, resubmits: p.resubmits, busyMark: sed.busyIntegral,
		plannedExec: exec, preemptions: p.preemptions, carriedJ: p.carriedJ, carriedG: p.carriedG,
	}
	rt.finish = r.eng.After(exec, "finish", func(t simtime.Time) {
		r.onFinish(t.Seconds(), sed, rt)
	})
	sed.running[p.task.ID] = rt
	sed.bumpWait()
	r.emit(obs.Event{T: now, Event: obs.EventSolve, ID: uint64(p.task.ID), Class: p.task.Class, Server: sed.node.Spec.Name})
}

// newRunning takes a runningTask from the free list (event-heap
// kernel) or allocates one.
func (r *Runner) newRunning() *runningTask {
	if n := len(r.rtFree); n > 0 {
		rt := r.rtFree[n-1]
		r.rtFree = r.rtFree[:n-1]
		return rt
	}
	return &runningTask{}
}

// freeRunning recycles a runningTask whose record can no longer be
// referenced: its finish event has fired or been cancelled and its
// fields copied out.
func (r *Runner) freeRunning(rt *runningTask) {
	if r.cfg.LegacyKernel {
		return
	}
	*rt = runningTask{}
	r.rtFree = append(r.rtFree, rt)
}

func (r *Runner) onFinish(now float64, sed *sedState, rt *runningTask) {
	sed.advanceBusy(now)
	delete(sed.running, rt.task.ID)
	sed.bumpWait()
	duringW := sed.node.Power() // draw while the task was still running
	if err := sed.node.FinishTask(now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	meanW, n := sed.meter.MeanWindow(rt.start, now)
	if n == 0 {
		// Task shorter than the meter period: attribute the draw
		// the node had while the task ran.
		meanW = duringW
	}
	exec := now - rt.start
	if sed.static == nil {
		sed.est.ObserveRequest(meanW, rt.task.Ops, exec)
	}
	rec := TaskRecord{
		ID:          rt.task.ID,
		Server:      sed.node.Spec.Name,
		Cluster:     sed.node.Spec.Cluster,
		Submit:      rt.task.Submit,
		Start:       rt.start,
		Finish:      now,
		MeanPowerW:  meanW,
		Resubmits:   rt.resubmits,
		Preemptions: rt.preemptions,
		Deadline:    rt.task.Deadline,
		Class:       rt.task.Class,
	}
	if r.sla != nil {
		terms := r.terms[rt.task.ID]
		rec.Deadline = terms.Deadline
		rec.EarnedUSD = terms.EarnedUSD(now)
		r.ledger.Complete(terms, now)
	}
	if rec.Deadline > 0 && now > rec.Deadline {
		r.res.DeadlineMisses++
	}
	// Per-task energy share: the node's measured draw over the window,
	// split across the mean number of co-running tasks so concurrent
	// tasks divide the node's joules instead of each claiming all.
	// Preempted segments were charged the same way at checkpoint time
	// and carried forward, so the record still accounts every joule the
	// task consumed.
	meanBusy := (sed.busyIntegral - rt.busyMark) / exec
	if meanBusy < 1 {
		meanBusy = 1
	}
	rec.EnergyShareJ = meanW*exec/meanBusy + rt.carriedJ
	rec.CO2Grams = rt.carriedG
	if sed.site != nil {
		// Carbon attribution: the final segment's energy share
		// integrated against the site's intensity over its window.
		rec.CO2Grams += carbon.Grams(*sed.site, meanW*exec/meanBusy, rt.start, now)
	}
	r.res.Records = append(r.res.Records, rec)
	r.res.Completed++
	r.emit(obs.Event{
		T: now, Event: obs.EventComplete, ID: uint64(rec.ID), Class: rec.Class,
		Server: rec.Server, DurSec: exec, EnergyJ: rec.EnergyShareJ,
	})
	for _, m := range r.mods {
		m.OnFinish(rec)
	}
	r.res.PerNodeTasks[rec.Server]++
	r.res.PerClusterTasks[rec.Cluster]++
	if now > r.lastFinish {
		r.lastFinish = now
	}
	r.drainQueue(now, sed)
	if len(sed.running) == 0 && sed.qlen() == 0 {
		sed.idleAt = now
	}
	r.freeRunning(rt)
}

func (r *Runner) drainQueue(now float64, sed *sedState) {
	for sed.qlen() > 0 && sed.freeSlots() > 0 {
		p := sed.removeQueued(r.nextQueued(sed))
		r.startTask(now, sed, p)
	}
}

// nextQueued returns the index (into queued()) of the task a freed
// slot on sed serves next: the best per the SLA queue discipline (EDF,
// VALUE-DENSITY), or the head under FIFO.
func (r *Runner) nextQueued(sed *sedState) int {
	next := 0
	if r.order != nil {
		q := sed.queued()
		for i := 1; i < len(q); i++ {
			if r.order.Less(r.taskView(q[i].task), r.taskView(q[next].task)) {
				next = i
			}
		}
	}
	return next
}

// taskView projects a task into the slice queue disciplines rank on,
// with class defaults resolved when SLA is configured.
func (r *Runner) taskView(t workload.Task) sched.TaskView {
	v := sched.TaskView{ID: t.ID, Ops: t.Ops, Submit: t.Submit, Deadline: t.Deadline, Value: t.Value}
	if terms, ok := r.terms[t.ID]; ok {
		v.Deadline = terms.Deadline
		v.Value = terms.ValueUSD
	}
	return v
}

func (r *Runner) onCrash(now float64, sed *sedState) {
	// Collect and cancel in-flight work, then fail the node. Only
	// running tasks lose an execution (and are charged a resubmit):
	// queued work never started, so it migrates to a fresh election
	// with its stats untouched instead of inflating Result.Crashed.
	sed.advanceBusy(now)
	var lost []pendingTask
	for id, rt := range sed.running {
		r.eng.Cancel(rt.finish)
		lost = append(lost, pendingTask{
			task: rt.task, resubmits: rt.resubmits + 1,
			preemptions: rt.preemptions, carriedJ: rt.carriedJ, carriedG: rt.carriedG,
		})
		delete(sed.running, id)
		r.freeRunning(rt)
	}
	sed.bumpWait()
	// Lost executions fail on the trace in ID order — the map walk
	// above must not leak its iteration order into the event stream.
	if len(r.lobs) > 0 {
		failed := append([]pendingTask(nil), lost...)
		sort.Slice(failed, func(i, j int) bool { return failed[i].task.ID < failed[j].task.ID })
		for _, p := range failed {
			r.emit(obs.Event{T: now, Event: obs.EventFail, ID: uint64(p.task.ID), Class: p.task.Class, Server: sed.node.Spec.Name, Err: "node crash"})
		}
	}
	r.res.Crashed += len(lost)
	for _, p := range sed.queued() {
		p.admitted = true // already screened; never re-screen at crash time
		lost = append(lost, p)
	}
	sed.clearQueue()
	sed.node.Crash(now)
	sed.candidate = false
	sed.failed = true
	// Deterministic resubmission order.
	sort.Slice(lost, func(i, j int) bool { return lost[i].task.ID < lost[j].task.ID })
	for _, p := range lost {
		p := p
		r.eng.After(0, "resubmit", func(t simtime.Time) { r.onArrival(t.Seconds(), p) })
	}
}

func (r *Runner) scheduleSample(period float64) {
	r.eng.After(period, "sample", func(now simtime.Time) {
		total := 0.0
		for _, sed := range r.seds {
			total += sed.node.Power()
		}
		r.res.Series = append(r.res.Series, Point{T: now.Seconds(), W: total})
		// Keep sampling while work remains.
		if r.resolved() < len(r.cfg.Tasks) {
			r.scheduleSample(period)
		}
	})
}

func (r *Runner) finalize() {
	makespan := r.lastFinish
	r.res.Makespan = makespan
	for _, sed := range r.seds {
		// A controller-issued boot can complete after the last task
		// finish; never settle a node backwards — its boot energy is
		// real (and honestly charged to the run that wasted it).
		end := makespan
		if t := sed.node.LastSettle(); t > end {
			end = t
		}
		sed.node.Settle(end)
		e := sed.node.Energy()
		r.res.PerNodeEnergyJ[sed.node.Spec.Name] = e
		r.res.PerClusterEnergy[sed.node.Spec.Cluster] += e
		r.res.EnergyJ += e
		if sed.co2 != nil {
			g := sed.co2.Grams()
			r.res.PerNodeCO2G[sed.node.Spec.Name] = g
			r.res.PerClusterCO2[sed.node.Spec.Cluster] += g
			r.res.CO2Grams += g
		}
	}
	for _, m := range r.mods {
		m.Finalize(r.res)
	}
}
