package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"greensched/internal/carbon"
	"greensched/internal/power"
)

// TelemetrySample is one per-tick snapshot of the platform: the
// fleet-level series a live deployment would scrape off /metrics,
// sampled on virtual time instead. CO2Rate is grams per second at the
// tick (powered draw weighted by each cluster's intensity), 0 without
// a carbon profile.
type TelemetrySample struct {
	T        float64 `json:"t"`
	Queued   int     `json:"queued"`
	Unplaced int     `json:"unplaced"`
	Running  int     `json:"running"`
	Powered  int     `json:"powered"`
	Watts    float64 `json:"watts"`
	CO2Rate  float64 `json:"co2_g_per_sec"`
}

// TelemetryModule samples fleet-level time series at every control
// tick — queue depth, unplaced backlog, running tasks, powered nodes,
// aggregate draw, CO2 rate — and writes them as CSV or JSONL. It is
// the simulator spelling of pointing a scraper at the live /metrics
// endpoint: a deterministic run yields a byte-identical series, so the
// files diff cleanly across scenario variants. It needs
// Config.ControlEvery > 0 (ticks are the sampling clock).
type TelemetryModule struct {
	BaseModule

	// W receives the series (required).
	W io.Writer
	// Format is "csv" (default) or "jsonl".
	Format string
	// Profile, when set, prices the powered draw into a CO2 rate with
	// each cluster's intensity at the tick.
	Profile *carbon.Profile

	// Samples retains the series in memory after the run (always on —
	// the slice is the analyzer-friendly form of the file).
	Samples []TelemetrySample

	enc *json.Encoder
}

// Init implements Module.
func (m *TelemetryModule) Init(r *Runner) error {
	if m.W == nil {
		return fmt.Errorf("sim: telemetry module needs a writer")
	}
	switch m.Format {
	case "", "csv":
		if _, err := io.WriteString(m.W, "t,queued,unplaced,running,powered,watts,co2_g_per_sec\n"); err != nil {
			return fmt.Errorf("sim: telemetry header: %w", err)
		}
	case "jsonl":
		m.enc = json.NewEncoder(m.W)
	default:
		return fmt.Errorf("sim: telemetry format %q (want csv or jsonl)", m.Format)
	}
	if r.cfg.ControlEvery <= 0 {
		return fmt.Errorf("sim: telemetry module needs Config.ControlEvery > 0 (ticks are its sampling clock)")
	}
	m.Samples = nil
	return nil
}

// OnTick implements Module: one sample per control tick.
func (m *TelemetryModule) OnTick(now float64, ctl Control) {
	s := TelemetrySample{T: now, Unplaced: ctl.Unplaced()}
	for _, n := range ctl.Nodes() {
		s.Queued += n.Queued
		s.Running += n.Running
		if n.State == power.On {
			s.Powered++
		}
		s.Watts += n.PowerW
		if m.Profile != nil {
			// g/s = W × gCO2/kWh ÷ (3.6e6 J/kWh)
			s.CO2Rate += n.PowerW * m.Profile.IntensityAt(n.Cluster, now) / 3.6e6
		}
	}
	m.Samples = append(m.Samples, s)
	if m.enc != nil {
		m.enc.Encode(s) //nolint:errcheck // telemetry must not abort the run
		return
	}
	// Shortest-roundtrip float formatting keeps the file deterministic
	// and diffable across runs.
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	row := strings.Join([]string{
		f(s.T), strconv.Itoa(s.Queued), strconv.Itoa(s.Unplaced), strconv.Itoa(s.Running),
		strconv.Itoa(s.Powered), f(s.Watts), f(s.CO2Rate),
	}, ",")
	io.WriteString(m.W, row+"\n") //nolint:errcheck // telemetry must not abort the run
}
