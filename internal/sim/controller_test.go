package sim

import (
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/workload"
)

// burstGapBurst builds the under-utilization pattern: a burst at t=0,
// a long idle gap, then a second phase that arrives over time (a small
// burst plus a request rate), giving a power-managing controller room
// to react.
func burstGapBurst(t *testing.T, n int, ops, gap float64) []workload.Task {
	t.Helper()
	first, err := workload.BurstThenRate{Total: n, Burst: n, Ops: ops}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	// The second phase must outrun a single node's service rate (12
	// cores), otherwise the survivor absorbs it and a controller has
	// no reason to boot anything: 1 task/s of ~45 s tasks needs ~4×
	// the capacity one node offers.
	second, err := workload.BurstThenRate{Total: n, Burst: n / 4, Rate: 1.0, Ops: 2 * ops}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	return workload.Merge(first, workload.Shift(second, gap))
}

// recordingController counts ticks and applies a trivial idle-off /
// backlog-on rule, exercising the Control surface end to end.
type recordingController struct {
	ticks int
}

func (c *recordingController) tick(now float64, ctl Control) {
	c.ticks++
	usable := 0
	for _, n := range ctl.Nodes() {
		if n.Candidate && n.State.Usable() {
			usable++
		}
	}
	pressure := ctl.Unplaced()
	for _, n := range ctl.Nodes() {
		if over := n.Queued - (n.Slots - n.Running); over > 0 {
			pressure += over
		}
	}
	if pressure > 0 {
		for _, n := range ctl.Nodes() {
			if n.State == power.Off {
				if err := ctl.PowerOn(n.Name); err == nil {
					usable++
				}
				break
			}
		}
	}
	for _, n := range ctl.Nodes() {
		if usable <= 1 {
			break
		}
		if n.State == power.On && n.Running == 0 && n.Queued == 0 && n.Idle >= 200 {
			if err := ctl.PowerOff(n.Name); err == nil {
				usable--
			}
		}
	}
}

func TestControllerHookEndToEnd(t *testing.T) {
	platform := cluster.PaperPlatform()
	tasks := burstGapBurst(t, 30, 2e11, 4000)
	ctl := &recordingController{}
	res, err := Run(Config{
		Platform:     platform,
		Policy:       sched.New(sched.Power),
		Tasks:        tasks,
		Seed:         1,
		OnControl:    ctl.tick,
		ControlEvery: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(tasks) {
		t.Fatalf("completed %d of %d", res.Completed, len(tasks))
	}
	if ctl.ticks == 0 {
		t.Fatal("controller never ticked")
	}
	if res.Shutdowns == 0 {
		t.Error("idle gap of 4000 s should trigger shutdowns")
	}
	if res.Boots == 0 {
		t.Error("second burst should trigger boots")
	}
}

func TestControllerSavesEnergyOnIdleGap(t *testing.T) {
	platform := cluster.PaperPlatform()
	tasks := burstGapBurst(t, 30, 2e11, 4000)
	base := Config{
		Platform: platform,
		Policy:   sched.New(sched.Power),
		Tasks:    tasks,
		Seed:     1,
	}
	alwaysOn, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withCtl := base
	ctl := &recordingController{}
	withCtl.OnControl = ctl.tick
	withCtl.ControlEvery = 60
	managed, err := Run(withCtl)
	if err != nil {
		t.Fatal(err)
	}
	if managed.EnergyJ >= alwaysOn.EnergyJ {
		t.Errorf("idle shutdown must save energy across a %g s gap: managed %.0f J, always-on %.0f J",
			4000.0, managed.EnergyJ, alwaysOn.EnergyJ)
	}
}

func TestControlPowerOffRefusals(t *testing.T) {
	platform := cluster.PaperPlatform()
	tasks := burstGapBurst(t, 4, 2e11, 1500)
	var sawRefusals bool
	hook := func(now float64, ctl Control) {
		nodes := ctl.Nodes()
		// Busy nodes must be refused.
		for _, n := range nodes {
			if n.State == power.On && n.Running > 0 {
				if err := ctl.PowerOff(n.Name); err == nil {
					t.Errorf("PowerOff accepted busy node %s", n.Name)
				} else {
					sawRefusals = true
				}
			}
		}
		if err := ctl.PowerOff("no-such-node"); err == nil {
			t.Error("PowerOff accepted an unknown node")
		}
		if err := ctl.PowerOn("no-such-node"); err == nil {
			t.Error("PowerOn accepted an unknown node")
		}
	}
	if _, err := Run(Config{
		Platform:     platform,
		Policy:       sched.New(sched.Power),
		Tasks:        tasks,
		Seed:         1,
		OnControl:    hook,
		ControlEvery: 30,
	}); err != nil {
		t.Fatal(err)
	}
	if !sawRefusals {
		t.Error("test never observed a busy node at a tick; widen the workload")
	}
}

func TestControlNeverLeavesZeroCandidates(t *testing.T) {
	platform := cluster.PaperPlatform()
	tasks := burstGapBurst(t, 2, 2e11, 3000)
	hook := func(now float64, ctl Control) {
		// Adversarial: try to power off everything every tick.
		for _, n := range ctl.Nodes() {
			ctl.PowerOff(n.Name) //nolint:errcheck // refusals expected
		}
		candidates := 0
		for _, n := range ctl.Nodes() {
			if n.Candidate {
				candidates++
			}
		}
		if candidates < 1 {
			t.Fatal("control surface allowed zero candidates")
		}
	}
	res, err := Run(Config{
		Platform:     platform,
		Policy:       sched.New(sched.Power),
		Tasks:        tasks,
		Seed:         1,
		OnControl:    hook,
		ControlEvery: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(tasks) {
		t.Fatalf("completed %d of %d with adversarial controller", res.Completed, len(tasks))
	}
}

func TestUnplacedCountReturnsToZero(t *testing.T) {
	platform := cluster.PaperPlatform()
	tasks := burstGapBurst(t, 10, 2e11, 2500)
	var maxUnplaced int
	hook := func(now float64, ctl Control) {
		if u := ctl.Unplaced(); u > maxUnplaced {
			maxUnplaced = u
		}
		// Idle-off quickly so the second burst finds everything off.
		usable := 0
		for _, n := range ctl.Nodes() {
			if n.Candidate && n.State.Usable() {
				usable++
			}
		}
		for _, n := range ctl.Nodes() {
			if usable <= 1 {
				break
			}
			if n.State == power.On && n.Running == 0 && n.Queued == 0 && n.Idle >= 60 {
				if ctl.PowerOff(n.Name) == nil {
					usable--
				}
			}
		}
		if ctl.Unplaced() > 0 {
			for _, n := range ctl.Nodes() {
				if n.State == power.Off {
					ctl.PowerOn(n.Name) //nolint:errcheck
				}
			}
		}
	}
	res, err := Run(Config{
		Platform:     platform,
		Policy:       sched.New(sched.Power),
		Tasks:        tasks,
		Seed:         1,
		OnControl:    hook,
		ControlEvery: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(tasks) {
		t.Fatalf("completed %d of %d", res.Completed, len(tasks))
	}
	if maxUnplaced == 0 {
		t.Log("note: no unplaced backlog observed (nodes stayed up); counter still sane")
	}
}
