package sim

import (
	"sort"
	"strings"
	"testing"

	"greensched/internal/estvec"
	"greensched/internal/sched"
)

func TestOnFinishHookObservesEveryTask(t *testing.T) {
	var seen []TaskRecord
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(25, 1e11, 2),
		Explore:  true,
		Seed:     3,
		OnFinish: func(rec TaskRecord) { seen = append(seen, rec) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Completed {
		t.Fatalf("hook saw %d records, want %d", len(seen), res.Completed)
	}
	// Hook order is completion order (non-decreasing finish times).
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i].Finish < seen[j].Finish }) {
		t.Fatal("hook records out of completion order")
	}
	// Records match the result set exactly.
	byID := map[int]TaskRecord{}
	for _, rec := range res.Records {
		byID[rec.ID] = rec
	}
	for _, rec := range seen {
		if byID[rec.ID] != rec {
			t.Fatalf("hook record %+v diverges from result record %+v", rec, byID[rec.ID])
		}
	}
}

func TestOnFinishHookCanSteerPolicy(t *testing.T) {
	// A toy controller: after 10 completions flip a flag the policy
	// reads — verifies hooks run synchronously inside the event loop
	// and later elections observe controller state.
	flipped := false
	count := 0
	pol := flagPolicy{flag: &flipped}
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   pol,
		Tasks:    tasks(40, 1e11, 1),
		Seed:     4,
		OnFinish: func(TaskRecord) {
			count++
			if count == 10 {
				flipped = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !flipped {
		t.Fatal("controller never flipped")
	}
	if res.Completed != 40 {
		t.Fatal("tasks lost")
	}
}

// flagPolicy prefers taurus before the flip and sagittaire after.
type flagPolicy struct{ flag *bool }

func (flagPolicy) Name() string { return "FLAG" }
func (p flagPolicy) Less(a, b *estvec.Vector) bool {
	prefer := "taurus"
	if *p.flag {
		prefer = "sagittaire"
	}
	aPref := strings.HasPrefix(a.Server, prefer)
	bPref := strings.HasPrefix(b.Server, prefer)
	if aPref != bPref {
		return aPref
	}
	return a.Server < b.Server
}
