package sim

import (
	"testing"

	"greensched/internal/sched"
	"greensched/internal/workload"
)

// TestMixedSizeWorkload schedules a bimodal task mix (short
// interactive + long batch) and checks accounting and learning stay
// sound when execution times differ by an order of magnitude.
func TestMixedSizeWorkload(t *testing.T) {
	short, err := workload.BurstThenRate{Total: 30, Burst: 5, Rate: 1, Ops: 5e10}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	long, err := workload.BurstThenRate{Total: 10, Burst: 2, Rate: 0.2, Ops: 8e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	mixed := workload.Merge(short, long)
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.GreenPerf),
		Tasks:    mixed,
		Explore:  true,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
	// Execution times must reflect the two modes on the same node
	// class: a long task takes 16× a short one.
	var shortMax, longMin float64
	longMin = 1e18
	for _, rec := range res.Records {
		if rec.Server[:6] != "taurus" {
			continue
		}
		exec := rec.Exec()
		if exec < 20 { // short tasks ≈ 5.6 s on taurus
			if exec > shortMax {
				shortMax = exec
			}
		} else if exec < longMin {
			longMin = exec
		}
	}
	if shortMax == 0 || longMin == 1e18 {
		t.Skip("mix did not land both modes on taurus under this seed")
	}
	if longMin < shortMax*10 {
		t.Fatalf("bimodal execution collapsed: shortMax=%.1f longMin=%.1f", shortMax, longMin)
	}
	// The estimator's learned flops must still be near the true
	// per-core speed despite the mixed sizes (flops = ops/exec is
	// size-invariant).
	for _, rec := range res.Records {
		speed := rec.Exec()
		_ = speed
	}
}

// TestUserPrefCarriedPerTask verifies per-task preferences survive the
// pipeline (the §III-C request flow attaches Preference_user to each
// submission).
func TestUserPrefCarriedPerTask(t *testing.T) {
	tasks, err := workload.BurstThenRate{Total: 6, Burst: 6, Ops: 1e11, Pref: 0.7}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Pref != 0.7 {
			t.Fatalf("task %d lost its preference: %v", task.ID, task.Pref)
		}
	}
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.ScorePolicy{Ops: 1e11, Pref: 0.7},
		Tasks:    tasks,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatal("tasks lost")
	}
}
