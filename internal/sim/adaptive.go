package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"

	"greensched/internal/cluster"
	"greensched/internal/estvec"
	"greensched/internal/power"
	"greensched/internal/provision"
	"greensched/internal/sched"
	"greensched/internal/simtime"
	"greensched/internal/workload"
)

// AdaptiveConfig parameterizes the §IV-C adaptive-provisioning
// experiment: a client submits "a continuous flow of requests
// intending to reach the capacity of the infrastructure" while the
// planner reacts to energy-related events by resizing the candidate
// pool; non-candidate nodes are drained and powered off.
type AdaptiveConfig struct {
	Platform *cluster.Platform
	Planner  *provision.Planner
	Store    *provision.Store

	// Policy places tasks among candidate nodes (the experiment uses
	// GreenPerf — "Preference_provider ... giving priority to
	// energy-efficient nodes").
	Policy sched.Policy

	TaskOps float64 // flops per request
	Horizon float64 // experiment length in seconds (260 min in Fig. 9)

	// SampleWindow is the energy-averaging window of Figure 9's
	// crosses ("an average value of energy consumption measured
	// during the previous 10 minutes"). 0 means the planner period.
	SampleWindow float64

	// Thermal, when set, closes the monitoring loop the paper lists
	// as an information source ("using the infrastructure monitoring
	// system"): at every planner tick the room model is fed the
	// current per-node draws and the *measured* hottest inlet
	// temperature is written into the plan store as an unexpected
	// record — heat events then emerge from load instead of being
	// injected. *thermal.Monitor satisfies the interface.
	Thermal ThermalMonitor

	Seed int64
}

// ThermalMonitor is the room-model surface the adaptive loop (and
// thermal.Module) feed: per-node draws in, smoothed inlet temperatures
// out. It is defined here rather than in package thermal so that
// package thermal can depend on sim (for its Module) without a cycle.
type ThermalMonitor interface {
	// Update folds in the current per-node draws (watts, platform
	// order) and returns the smoothed inlet temperatures.
	Update(watts []float64) ([]float64, error)
	// Max returns the hottest inlet temperature.
	Max() float64
}

// AdaptiveSample is one Figure 9 measurement point.
type AdaptiveSample struct {
	T          float64 // seconds
	Candidates int     // planner pool size (plain line, left axis)
	AvgW       float64 // mean platform draw over the previous window (crosses, right axis)
	Running    int     // tasks executing at the sample instant
}

// AdaptiveResult is the outcome of the adaptive run.
type AdaptiveResult struct {
	Samples   []AdaptiveSample
	Decisions []provision.Decision
	EnergyJ   power.Joules
	Completed int
	Boots     int
	// DrainLagS is the mean delay between a shutdown order and the
	// node actually powering off (tasks in progress are allowed to
	// complete, which Figure 9 shows as the delayed energy drop).
	DrainLagS float64
}

// adaptiveRunner holds the §IV-C experiment state.
type adaptiveRunner struct {
	cfg AdaptiveConfig
	eng *simtime.Engine
	rng *rand.Rand

	seds  []*sedState // in GreenPerf order: seds[0] is the greenest
	sel   *sched.Selector
	res   *AdaptiveResult
	pool  int // current candidate pool size
	tasks int // task ID counter

	drainOrdered map[int]float64 // sed index → time shutdown was ordered
	drainLags    []float64
	lastSampleE  power.Joules
}

// RunAdaptive executes the adaptive-provisioning scenario.
func RunAdaptive(cfg AdaptiveConfig) (*AdaptiveResult, error) {
	if cfg.Platform == nil || cfg.Planner == nil || cfg.Store == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("sim: adaptive config needs platform, planner, store and policy")
	}
	if cfg.TaskOps <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: adaptive config needs positive task ops and horizon")
	}
	if err := cfg.Planner.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleWindow <= 0 {
		cfg.SampleWindow = cfg.Planner.CheckPeriod
	}
	// Thermal was a *thermal.Monitor before it became an interface; a
	// typed-nil pointer must keep meaning "no room model" instead of
	// passing the nil guard and panicking on the first measurement.
	if v := reflect.ValueOf(cfg.Thermal); v.Kind() == reflect.Pointer && v.IsNil() {
		cfg.Thermal = nil
	}

	r := &adaptiveRunner{
		cfg:          cfg,
		eng:          simtime.NewEngine(),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		res:          &AdaptiveResult{},
		pool:         cfg.Planner.Current(),
		drainOrdered: make(map[int]float64),
	}
	r.sel = &sched.Selector{Policy: cfg.Policy, QueueFactor: 1, Explore: false}

	// Order nodes by static GreenPerf: the pool always consists of
	// the most energy-efficient prefix.
	order := make([]int, len(cfg.Platform.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := cfg.Platform.Nodes[order[a]], cfg.Platform.Nodes[order[b]]
		ga, gb := na.GreenPerfStatic(), nb.GreenPerfStatic()
		if ga != gb {
			return ga < gb
		}
		return na.Name < nb.Name
	})
	for rank, idx := range order {
		spec := cfg.Platform.Nodes[idx]
		meter := power.NewWattmeter(0, cfg.Seed+int64(idx)+1)
		sed := &sedState{
			idx:     rank,
			est:     power.NewEstimator(64),
			meter:   meter,
			slots:   spec.Cores,
			running: make(map[int]*runningTask),
		}
		if rank < r.pool {
			sed.node = cluster.NewNode(spec, 0, meter)
			sed.candidate = true
		} else {
			sed.node = cluster.NewNodeOff(spec, 0, meter)
			sed.candidate = false
		}
		// Static estimates: the §IV-C experiment is about
		// provisioning reactivity, not learning; seed from the
		// §IV-B-style initial benchmark.
		cal := cluster.BenchmarkNode(spec, 1e9, 0, nil)
		sed.static = &cal
		r.seds = append(r.seds, sed)
	}

	r.schedulePlannerTicks()
	r.scheduleSamples()
	r.submitToCapacity(0)

	budget := uint64(cfg.Horizon/cfg.Planner.CheckPeriod)*1<<16 + 1<<22
	if _, err := r.eng.Run(budget); err != nil {
		return nil, err
	}
	r.finalize()
	return r.res, nil
}

func (r *adaptiveRunner) schedulePlannerTicks() {
	period := r.cfg.Planner.CheckPeriod
	var tick func(now simtime.Time)
	tick = func(now simtime.Time) {
		if now.Seconds() > r.cfg.Horizon {
			return
		}
		r.measureTemperature(now.Seconds())
		d := r.cfg.Planner.Check(now.Seconds(), r.cfg.Store)
		r.res.Decisions = append(r.res.Decisions, d)
		r.applyPool(now.Seconds(), d.Pool)
		r.eng.After(period, "planner", tick)
	}
	r.eng.After(period, "planner", tick)
}

// measureTemperature feeds the room model with current node draws and
// records the measured maximum inlet temperature in the plan store
// (an unexpected record: measurements are not forecastable).
func (r *adaptiveRunner) measureTemperature(now float64) {
	if r.cfg.Thermal == nil {
		return
	}
	// Watts indexed by platform order, matching the caller's matrix.
	watts := make([]float64, len(r.cfg.Platform.Nodes))
	for _, sed := range r.seds {
		idx := r.cfg.Platform.Find(sed.node.Spec.Name)
		sed.node.Settle(now)
		watts[idx] = sed.node.Power()
	}
	if _, err := r.cfg.Thermal.Update(watts); err != nil {
		panic(fmt.Sprintf("sim: thermal feed: %v", err))
	}
	cost := 1.0
	if rec, ok := r.cfg.Store.At(int64(now)); ok {
		cost = rec.Cost
	}
	r.cfg.Store.Put(provision.Record{
		Value:       int64(now),
		Temperature: r.cfg.Thermal.Max(),
		Cost:        cost,
		Candidates:  r.pool,
		Unexpected:  true,
	})
}

// applyPool grows or shrinks the candidate pool to size k.
func (r *adaptiveRunner) applyPool(now float64, k int) {
	if k > len(r.seds) {
		k = len(r.seds)
	}
	r.pool = k
	for rank, sed := range r.seds {
		want := rank < k
		switch {
		case want && !sed.candidate:
			sed.candidate = true
			delete(r.drainOrdered, rank)
			if sed.node.State() == power.Off {
				done, err := sed.node.PowerOn(now)
				if err == nil {
					r.res.Boots++
					rank := rank
					r.eng.At(simtime.Time(done), "boot-done", func(t simtime.Time) {
						r.onBootDone(t.Seconds(), r.seds[rank])
					})
				}
			}
		case !want && sed.candidate:
			sed.candidate = false
			r.drainOrdered[rank] = now
			r.tryPowerOff(now, sed)
		}
	}
	r.submitToCapacity(now)
}

func (r *adaptiveRunner) onBootDone(now float64, sed *sedState) {
	if sed.node.State() != power.Booting {
		return // shut down again while booting is not modelled; skip
	}
	if err := sed.node.BootDone(now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	// "After each request completion, the client is notified of the
	// current amount of candidate nodes, and is free to adjust its
	// request rate" — new capacity triggers new submissions.
	r.submitToCapacity(now)
}

// tryPowerOff shuts a drained non-candidate node down; tasks in
// progress are allowed to complete first.
func (r *adaptiveRunner) tryPowerOff(now float64, sed *sedState) {
	if sed.candidate || sed.node.State() != power.On {
		return
	}
	if len(sed.running) > 0 || sed.qlen() > 0 {
		return // drain continues; onFinish retries
	}
	if err := sed.node.PowerOff(now); err == nil {
		if ordered, ok := r.drainOrdered[sed.idx]; ok {
			r.drainLags = append(r.drainLags, now-ordered)
			delete(r.drainOrdered, sed.idx)
		}
	}
}

// capacity is the total slot count across candidate, powered-on nodes.
func (r *adaptiveRunner) capacity() int {
	total := 0
	for _, sed := range r.seds {
		if sed.candidate && sed.node.State() == power.On {
			total += sed.slots
		}
	}
	return total
}

func (r *adaptiveRunner) inFlight() int {
	total := 0
	for _, sed := range r.seds {
		total += len(sed.running) + sed.qlen()
	}
	return total
}

// submitToCapacity is the closed-loop client: it keeps exactly as many
// requests in flight as the candidate pool can execute.
func (r *adaptiveRunner) submitToCapacity(now float64) {
	if now > r.cfg.Horizon {
		return
	}
	for r.inFlight() < r.capacity() {
		list := make(estvec.List, 0, len(r.seds))
		for _, sed := range r.seds {
			list = append(list, sed.vector(now, r.rng))
		}
		chosen, err := r.sel.Select(list)
		if err != nil {
			return
		}
		sed := r.sedByName(chosen.Server)
		if sed == nil || sed.freeSlots() == 0 {
			return // only queueing left; the closed loop never queues
		}
		task := pendingTask{task: taskOf(r.tasks, r.cfg.TaskOps, now)}
		r.tasks++
		r.startAdaptiveTask(now, sed, task)
	}
}

func (r *adaptiveRunner) sedByName(name string) *sedState {
	for _, sed := range r.seds {
		if sed.node.Spec.Name == name {
			return sed
		}
	}
	return nil
}

func (r *adaptiveRunner) startAdaptiveTask(now float64, sed *sedState, p pendingTask) {
	if err := sed.node.StartTask(now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	exec := sed.node.Spec.TaskSeconds(p.task.Ops)
	rt := &runningTask{task: p.task, start: now}
	rt.finish = r.eng.After(exec, "finish", func(t simtime.Time) {
		r.onAdaptiveFinish(t.Seconds(), sed, rt)
	})
	sed.running[p.task.ID] = rt
	sed.bumpWait()
}

func (r *adaptiveRunner) onAdaptiveFinish(now float64, sed *sedState, rt *runningTask) {
	delete(sed.running, rt.task.ID)
	sed.bumpWait()
	if err := sed.node.FinishTask(now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	r.res.Completed++
	if !sed.candidate {
		r.tryPowerOff(now, sed)
	}
	r.submitToCapacity(now)
}

func (r *adaptiveRunner) scheduleSamples() {
	window := r.cfg.SampleWindow
	var sample func(now simtime.Time)
	sample = func(now simtime.Time) {
		total := power.Joules(0)
		running := 0
		for _, sed := range r.seds {
			sed.node.Settle(now.Seconds())
			total += sed.node.Energy()
			running += len(sed.running)
		}
		avgW := (total - r.lastSampleE) / window
		r.lastSampleE = total
		r.res.Samples = append(r.res.Samples, AdaptiveSample{
			T:          now.Seconds(),
			Candidates: r.pool,
			AvgW:       avgW,
			Running:    running,
		})
		if now.Seconds()+window <= r.cfg.Horizon {
			r.eng.After(window, "sample", sample)
		}
	}
	r.eng.After(window, "sample", sample)
}

func (r *adaptiveRunner) finalize() {
	// Tasks in flight at the horizon drain past it; settle at the
	// later of the two so energy accounting is complete.
	end := r.cfg.Horizon
	if now := r.eng.Now().Seconds(); now > end {
		end = now
	}
	for _, sed := range r.seds {
		sed.node.Settle(end)
		r.res.EnergyJ += sed.node.Energy()
	}
	if len(r.drainLags) > 0 {
		sum := 0.0
		for _, l := range r.drainLags {
			sum += l
		}
		r.res.DrainLagS = sum / float64(len(r.drainLags))
	}
}

func taskOf(id int, ops, submit float64) workload.Task {
	return workload.Task{ID: id, Ops: ops, Submit: submit}
}
