package sim

import (
	"strings"
	"testing"

	"greensched/internal/carbon"
	"greensched/internal/sched"
)

// TestTelemetryModuleSeries: the per-tick series is present, headered,
// and physically sensible — work shows up in the queued/running/watts
// columns, the CO2 rate prices the draw with the profile's intensity.
func TestTelemetryModuleSeries(t *testing.T) {
	var sb strings.Builder
	tm := &TelemetryModule{
		W:       &sb,
		Profile: carbon.MustProfile(carbon.SiteProfile{Site: "grid", Signal: carbon.Constant{G: 300}}),
	}
	res, err := Run(Config{
		Platform:     smallPlatform(),
		Policy:       sched.New(sched.Power),
		Tasks:        tasks(30, 1e11, 2),
		Seed:         1,
		ControlEvery: 1,
		Modules:      []Module{tm},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 30 {
		t.Fatalf("completed %d, want 30", res.Completed)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != "t,queued,unplaced,running,powered,watts,co2_g_per_sec" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines)-1 != len(tm.Samples) {
		t.Fatalf("%d rows for %d samples", len(lines)-1, len(tm.Samples))
	}
	if len(tm.Samples) == 0 {
		t.Fatal("no samples for a run with ControlEvery set")
	}
	sawWork, sawCO2 := false, false
	for i, s := range tm.Samples {
		if i > 0 && s.T <= tm.Samples[i-1].T {
			t.Fatalf("sample times not increasing: %v after %v", s.T, tm.Samples[i-1].T)
		}
		if s.Running > 0 || s.Queued > 0 {
			sawWork = true
		}
		if s.CO2Rate > 0 {
			sawCO2 = true
			// g/s must equal W·G/3.6e6 within float noise.
			want := s.Watts * 300 / 3.6e6
			if diff := s.CO2Rate - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("co2 rate %v for %v W, want %v", s.CO2Rate, s.Watts, want)
			}
		}
	}
	if !sawWork || !sawCO2 {
		t.Fatalf("degenerate series: sawWork=%v sawCO2=%v", sawWork, sawCO2)
	}
}

// TestTelemetryModuleDeterministic: same seed, byte-identical file —
// in both formats.
func TestTelemetryModuleDeterministic(t *testing.T) {
	for _, format := range []string{"csv", "jsonl"} {
		run := func() string {
			var sb strings.Builder
			_, err := Run(Config{
				Platform:     smallPlatform(),
				Policy:       sched.New(sched.Random),
				Tasks:        tasks(25, 1e11, 2),
				Seed:         7,
				ControlEvery: 0.5,
				Modules:      []Module{&TelemetryModule{W: &sb, Format: format}},
			})
			if err != nil {
				t.Fatal(err)
			}
			return sb.String()
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%s: same seed produced different telemetry", format)
		}
	}
}

// TestTelemetryModuleConfig: a missing writer, a bad format and a
// tickless run are construction errors.
func TestTelemetryModuleConfig(t *testing.T) {
	var sb strings.Builder
	for name, cfg := range map[string]Config{
		"no writer":  {Modules: []Module{&TelemetryModule{}}, ControlEvery: 1},
		"bad format": {Modules: []Module{&TelemetryModule{W: &sb, Format: "xml"}}, ControlEvery: 1},
		"no ticks":   {Modules: []Module{&TelemetryModule{W: &sb}}},
	} {
		cfg.Platform = smallPlatform()
		cfg.Policy = sched.New(sched.Power)
		cfg.Tasks = tasks(1, 1e10, 1)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: misconfigured telemetry module accepted", name)
		}
	}
}
