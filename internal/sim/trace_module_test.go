package sim

import (
	"strings"
	"testing"

	"greensched/internal/obs"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

func runTraced(t *testing.T, cfg Config) ([]obs.Event, *Result) {
	t.Helper()
	var sb strings.Builder
	cfg.Modules = append(cfg.Modules, &TraceModule{W: &sb})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	return events, res
}

// TestTraceModuleLifecycleSequence: every completed task's trace walks
// the documented submit → admit → elect → solve → complete sequence,
// on virtual time, with the sim source stamped.
func TestTraceModuleLifecycleSequence(t *testing.T) {
	events, res := runTraced(t, Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(20, 1e11, 2),
		Seed:     1,
	})
	byID := map[uint64][]string{}
	for _, ev := range events {
		if ev.Src != "sim" {
			t.Fatalf("event source %q, want sim: %+v", ev.Src, ev)
		}
		byID[ev.ID] = append(byID[ev.ID], ev.Event)
	}
	if len(byID) != res.Completed {
		t.Fatalf("traced %d tasks, result completed %d", len(byID), res.Completed)
	}
	want := []string{obs.EventSubmit, obs.EventAdmit, obs.EventElect, obs.EventSolve, obs.EventComplete}
	for id, seq := range byID {
		if len(seq) != len(want) {
			t.Fatalf("task %d sequence %v, want %v", id, seq, want)
		}
		for i := range want {
			if seq[i] != want[i] {
				t.Fatalf("task %d event %d = %s, want %s", id, i, seq[i], want[i])
			}
		}
	}
	// Virtual timestamps are monotone within a task and complete events
	// carry the execution's duration and energy share.
	for _, ev := range events {
		if ev.Event == obs.EventComplete && (ev.DurSec <= 0 || ev.EnergyJ <= 0 || ev.Server == "") {
			t.Errorf("complete event incomplete: %+v", ev)
		}
	}
}

// TestTraceModuleDeterministic: same seed, byte-identical JSONL.
func TestTraceModuleDeterministic(t *testing.T) {
	run := func() string {
		var sb strings.Builder
		cfg := Config{
			Platform: smallPlatform(),
			Policy:   sched.New(sched.Random),
			Tasks:    tasks(30, 1e11, 2),
			Seed:     42,
			Modules:  []Module{&TraceModule{W: &sb}},
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("same seed produced different traces")
	}
}

// TestTraceModuleRejection: an admission refusal traces as submit →
// reject and nothing further.
func TestTraceModuleRejection(t *testing.T) {
	catalog := sla.Catalog{
		"doomed": {Name: "doomed", RelDeadlineSec: 1e-9, ValueUSD: 1, Curve: sla.HardDrop{}},
	}
	ts := tasks(1, 1e11, 1)
	ts[0].Class = "doomed"
	events, res := runTraced(t, Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    ts,
		SLA:      &sla.Config{Catalog: catalog, Admission: &sla.Admission{Margin: 1}},
	})
	if res.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", res.Rejected)
	}
	if len(events) != 2 || events[0].Event != obs.EventSubmit || events[1].Event != obs.EventReject {
		t.Fatalf("rejection trace = %+v, want [submit reject]", events)
	}
	if events[1].Err == "" || events[1].Class != "doomed" {
		t.Errorf("reject event missing reason or class: %+v", events[1])
	}
}

// TestTraceModuleConfig: misconfiguration is a construction error.
func TestTraceModuleConfig(t *testing.T) {
	var sb strings.Builder
	for _, m := range []*TraceModule{
		{},
		{W: &sb, Tracer: obs.NewTracer(&sb)},
	} {
		_, err := Run(Config{
			Platform: smallPlatform(),
			Policy:   sched.New(sched.Power),
			Tasks:    tasks(1, 1e10, 1),
			Modules:  []Module{m},
		})
		if err == nil {
			t.Errorf("misconfigured trace module %+v accepted", m)
		}
	}
}
