package sim

import (
	"fmt"

	"greensched/internal/power"
)

// ExternalPowerModule replays an external power estimator into the
// simulation — the sim substrate of the powerd sidecar protocol. Every
// node's estimation vector gets its power tag (and the green-perf
// ratio derived from it) overridden by the Source's reading for that
// node, keyed on virtual time, so a recorded estimator stream
// (powerd.TraceModel, typically loaded with powerd.ParseTraceCSV)
// steers elections exactly as the live sidecar would — and exactly the
// same way on every run: the lookup is time-keyed, the engine's clock
// is deterministic, so two runs of one config are bit-identical.
//
// Nodes the source has no reading for keep their built-in estimates
// (moving-average estimator or static calibration), mirroring the live
// client's graceful fallback.
type ExternalPowerModule struct {
	BaseModule

	// Source supplies per-node watts; required. It is queried with the
	// node name and a single power.MetricTime metric carrying virtual
	// seconds.
	Source power.Source
}

// Init implements Module: it attaches the source to every node's
// estimation path.
func (m *ExternalPowerModule) Init(r *Runner) error {
	if m.Source == nil {
		return fmt.Errorf("sim: external power module needs a power source")
	}
	for _, sed := range r.seds {
		if sed.extPower != nil {
			return fmt.Errorf("sim: node %s already carries an external power source (two external power modules in one stack?)", sed.node.Spec.Name)
		}
		sed.extPower = m.Source
	}
	return nil
}
