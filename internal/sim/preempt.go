package sim

import (
	"fmt"
	"math"

	"greensched/internal/carbon"
	"greensched/internal/sched"
	"greensched/internal/simtime"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// This file relaxes the simulator's oldest invariant — "a started task
// runs to completion" — behind Config.Preemption: a running task can be
// checkpointed (its completed Ops fraction retained minus the restart
// penalty) and displaced by deadline-urgent work, either automatically
// at arrival when the elected SED's own slack math proves waiting would
// breach the deadline, or explicitly through Control.Preempt. The
// checkpointed segment still charges its energy and emissions (carried
// into the final TaskRecord), and the remainder re-enters election like
// any other submission. Package sla supplies the safety calculus,
// package sched the victim ordering.

// tryPreempt attempts to start a deadline-urgent arrival by
// checkpointing a running victim on the elected SED. It fires only
// when the SED's slack math says waiting would breach the deadline but
// an immediate start would not, the displacement gains dollars under
// the task's own curve, and a victim exists whose deadline survives
// the restart.
func (r *Runner) tryPreempt(now float64, sed *sedState, p pendingTask) bool {
	if r.pre == nil || len(sed.running) == 0 {
		return false
	}
	view := r.taskView(p.task)
	if view.Deadline <= 0 {
		return false
	}
	exec := sed.node.Spec.TaskSeconds(p.task.Ops)
	if now+exec > view.Deadline {
		return false // even an immediate start misses; nothing to save
	}
	wait := r.urgentWaitEstimate(now, sed, p.task)
	if now+wait+exec <= view.Deadline {
		return false // waiting keeps the deadline; disturb no one
	}
	if terms, ok := r.terms[p.task.ID]; ok {
		// With full terms on file the urgency must also pay: displacing
		// for a task whose curve retains nothing either way would burn
		// checkpointed work for zero dollars.
		if sla.DisplacementGainUSD(terms, now, exec, wait) <= 0 {
			return false
		}
	}
	rt := r.pickVictim(now, sed, exec)
	if rt == nil {
		return false
	}
	r.preempt(now, sed, rt)
	r.startTask(now, sed, p)
	return true
}

// urgentWaitEstimate bounds a deadline-urgent arrival's wait at sed
// under the queue discipline actually in force: when the configured
// order would pop it ahead of every queued task (the usual EDF case),
// it waits only for the earliest slot release; otherwise it falls
// back to the conservative FIFO drain estimate of waitEstimate.
func (r *Runner) urgentWaitEstimate(now float64, sed *sedState, t workload.Task) float64 {
	if r.order != nil {
		view := r.taskView(t)
		first := true
		for _, q := range sed.queued() {
			if !r.order.Less(view, r.taskView(q.task)) {
				first = false
				break
			}
		}
		if first {
			wait := math.Inf(1)
			for _, rt := range sed.running {
				if w := rt.finish.At.Seconds() - now; w < wait {
					wait = w
				}
			}
			if math.IsInf(wait, 1) || wait < 0 {
				wait = 0
			}
			return wait
		}
	}
	return sed.waitEstimate(now)
}

// pickVictim returns the cheapest running task (per sched.BestVictim)
// that is safe to displace for an urgent task of urgentExec seconds,
// or nil. Zero-progress segments are skipped: checkpointing them saves
// nothing and same-instant restarts could otherwise displace each
// other forever.
func (r *Runner) pickVictim(now float64, sed *sedState, urgentExec float64) *runningTask {
	rts := make([]*runningTask, 0, len(sed.running))
	views := make([]sched.VictimView, 0, len(sed.running))
	for _, rt := range sed.running {
		if now <= rt.start {
			continue
		}
		if !sla.SafeToDisplace(now, urgentExec, r.restartRemainingSec(now, sed, rt), r.victimTerms(rt.task)) {
			continue
		}
		rts = append(rts, rt)
		views = append(views, sched.NewVictimView(r.taskView(rt.task), now, rt.finish.At.Seconds()-now))
	}
	if i := sched.BestVictim(views, nil); i >= 0 {
		return rts[i]
	}
	return nil
}

// preempt checkpoints a running task: the executed segment charges its
// energy share (and emissions) exactly as a completion would, the slot
// frees, and the remaining work — unfinished Ops plus the restart
// penalty's share of the finished ones — re-enters election
// immediately. The caller decides what the freed slot serves next: the
// arrival path starts the urgent task, Control.Preempt drains the
// queue.
func (r *Runner) preempt(now float64, sed *sedState, rt *runningTask) {
	r.eng.Cancel(rt.finish)
	sed.advanceBusy(now)
	delete(sed.running, rt.task.ID)
	sed.bumpWait()
	duringW := sed.node.Power()
	if err := sed.node.FinishTask(now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	elapsed := now - rt.start
	segJ, segG := 0.0, 0.0
	if elapsed > 0 {
		meanW, n := sed.meter.MeanWindow(rt.start, now)
		if n == 0 {
			meanW = duringW
		}
		meanBusy := (sed.busyIntegral - rt.busyMark) / elapsed
		if meanBusy < 1 {
			meanBusy = 1
		}
		segJ = meanW * elapsed / meanBusy
		if sed.site != nil {
			segG = carbon.Grams(*sed.site, segJ, rt.start, now)
		}
	}
	done := r.doneOps(now, rt)
	p := pendingTask{
		task:        rt.task,
		resubmits:   rt.resubmits,
		preemptions: rt.preemptions + 1,
		carriedJ:    rt.carriedJ + segJ,
		carriedG:    rt.carriedG + segG,
	}
	p.task.Ops = r.pre.RemainingOps(rt.task.Ops, done)
	r.res.Preemptions++
	r.res.PreemptRedoneOps += r.pre.RedoneOps(done)
	r.eng.After(0, "restart", func(t simtime.Time) { r.onArrival(t.Seconds(), p) })
	if len(sed.running) == 0 && sed.qlen() == 0 {
		sed.idleAt = now
	}
	r.freeRunning(rt)
}

// doneOps is the work the current segment has completed by now.
func (r *Runner) doneOps(now float64, rt *runningTask) float64 {
	if rt.plannedExec <= 0 {
		return rt.task.Ops
	}
	frac := (now - rt.start) / rt.plannedExec
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return rt.task.Ops * frac
}

// restartRemainingSec prices a victim's post-checkpoint run time at
// the owning node's speed — conservative, since re-election may find a
// faster slot.
func (r *Runner) restartRemainingSec(now float64, sed *sedState, rt *runningTask) float64 {
	done := r.doneOps(now, rt)
	return sed.node.Spec.TaskSeconds(r.pre.RemainingOps(rt.task.Ops, done))
}

// victimTerms resolves the terms preemption safety is judged against:
// the SLA catalog's resolution when configured, the task's raw
// deadline/value otherwise (with the same curve fallbacks as
// sla.Catalog.Resolve).
func (r *Runner) victimTerms(t workload.Task) sla.Terms {
	if terms, ok := r.terms[t.ID]; ok {
		return terms
	}
	out := sla.Terms{Class: t.Class, Deadline: t.Deadline, ValueUSD: t.Value}
	if out.Deadline > 0 {
		out.Curve = sla.HardDrop{}
	} else {
		out.Curve = sla.Flat{}
	}
	return out
}
