package sim

import (
	"math"
	"testing"

	"greensched/internal/carbon"
	"greensched/internal/cluster"
	"greensched/internal/sched"
	"greensched/internal/workload"
)

func constantProfile(g float64) *carbon.Profile {
	return carbon.MustProfile(carbon.SiteProfile{Site: "grid", Signal: carbon.Constant{G: g}})
}

func carbonTasks(t *testing.T, n int, ops float64) []workload.Task {
	t.Helper()
	tasks, err := workload.BurstThenRate{Total: n, Burst: n, Ops: ops}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestCarbonAccountingMatchesEnergyOnConstantGrid(t *testing.T) {
	res, err := Run(Config{
		Platform: cluster.PaperPlatform(),
		Policy:   sched.New(sched.GreenPerf),
		Tasks:    carbonTasks(t, 24, 4.5e11),
		Explore:  true,
		Seed:     1,
		Carbon:   constantProfile(300),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := res.EnergyJ / carbon.JoulesPerKWh * 300
	if math.Abs(res.CO2Grams-want) > 1e-6*want {
		t.Errorf("CO2 = %v g, want energy-consistent %v g", res.CO2Grams, want)
	}
	// Per-node grams must sum to the total and mirror the energy split.
	sum := 0.0
	for name, g := range res.PerNodeCO2G {
		sum += g
		wantNode := res.PerNodeEnergyJ[name] / carbon.JoulesPerKWh * 300
		if math.Abs(g-wantNode) > 1e-6*want {
			t.Errorf("node %s CO2 %v, want %v", name, g, wantNode)
		}
	}
	if math.Abs(sum-res.CO2Grams) > 1e-9*want {
		t.Errorf("per-node sum %v != total %v", sum, res.CO2Grams)
	}
	clusterSum := 0.0
	for _, g := range res.PerClusterCO2 {
		clusterSum += g
	}
	if math.Abs(clusterSum-res.CO2Grams) > 1e-9*want {
		t.Errorf("per-cluster sum %v != total %v", clusterSum, res.CO2Grams)
	}
}

func TestCarbonDisabledLeavesResultZero(t *testing.T) {
	res, err := Run(Config{
		Platform: cluster.PaperPlatform(),
		Policy:   sched.New(sched.GreenPerf),
		Tasks:    carbonTasks(t, 12, 4.5e11),
		Explore:  true,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CO2Grams != 0 || len(res.PerNodeCO2G) != 0 {
		t.Errorf("carbon accounting must stay zero without a profile: %v %v",
			res.CO2Grams, res.PerNodeCO2G)
	}
}

func TestCarbonPolicyShiftsWorkToCleanSite(t *testing.T) {
	// Two identical clusters on very different grids: the CARBON
	// policy must route the work to the clean one once estimates are
	// learned.
	platform := cluster.MustPlatform(cluster.NewNodes("taurus", 2), cluster.NewNodes("orion", 2))
	profile := carbon.MustProfile(carbon.SiteProfile{Site: "dirty", Signal: carbon.Constant{G: 600}})
	if err := profile.SetCluster("orion", carbon.SiteProfile{Site: "clean", Signal: carbon.Constant{G: 30}}); err != nil {
		t.Fatal(err)
	}
	// A trickle (not one burst) so the learning phase finishes early
	// and the policy ordering decides the bulk of the placements.
	tasks, err := workload.BurstThenRate{Total: 120, Burst: 4, Rate: 0.4, Ops: 4.5e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	run := func(kind sched.Kind) *Result {
		res, err := Run(Config{
			Platform: platform,
			Policy:   sched.New(kind),
			Tasks:    tasks,
			Explore:  true,
			Seed:     1,
			Carbon:   profile,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	aware := run(sched.Carbon)
	blind := run(sched.GreenPerf)
	// GreenPerf prefers taurus (leanest watts); CARBON must overrule
	// it because orion sits on a 20× cleaner grid.
	if aware.PerClusterTasks["orion"] <= aware.PerClusterTasks["taurus"] {
		t.Errorf("CARBON placed %d on clean orion vs %d on dirty taurus",
			aware.PerClusterTasks["orion"], aware.PerClusterTasks["taurus"])
	}
	if blind.PerClusterTasks["taurus"] <= blind.PerClusterTasks["orion"] {
		t.Errorf("GREENPERF baseline should prefer taurus, got %v", blind.PerClusterTasks)
	}
	if aware.CO2Grams >= blind.CO2Grams {
		t.Errorf("carbon-aware placement emitted %v g >= blind %v g", aware.CO2Grams, blind.CO2Grams)
	}
}

func TestCarbonDiurnalIntegrationIsTimeSensitive(t *testing.T) {
	// The same burst executed in a clean hour vs a dirty hour must
	// produce different grams from near-identical joules.
	d := carbon.Diurnal{MeanG: 300, AmplitudeG: 250, CleanHour: 13}
	profile := carbon.MustProfile(carbon.SiteProfile{Site: "solar", Signal: d})
	run := func(shift float64) *Result {
		res, err := Run(Config{
			Platform: cluster.MustPlatform(cluster.NewNodes("taurus", 2)),
			Policy:   sched.New(sched.GreenPerf),
			Tasks:    workload.Shift(carbonTasks(t, 24, 4.5e11), shift),
			Explore:  true,
			Seed:     1,
			Carbon:   profile,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(13 * 3600) // burst at 13:00
	dirty := run(1 * 3600)  // burst at 01:00
	// Each run integrates the idle floor from t=0 to its own
	// makespan, so compare the *marginal* emissions above an
	// idle-only platform over the same horizon: the work itself must
	// cost far more grams in the dirty hour.
	taurus, _ := cluster.Spec("taurus")
	marginal := func(r *Result) float64 {
		idleJ := 2 * taurus.IdleW * r.Makespan
		return r.CO2Grams - idleJ/carbon.JoulesPerKWh*d.MeanIntensity(0, r.Makespan)
	}
	mClean, mDirty := marginal(clean), marginal(dirty)
	if mClean <= 0 || mDirty <= 0 {
		t.Fatalf("marginal grams must be positive: clean %v, dirty %v", mClean, mDirty)
	}
	if mClean >= mDirty/2 {
		t.Errorf("clean-hour marginal %v g not clearly below dirty-hour %v g", mClean, mDirty)
	}
}
