package sim

import (
	"fmt"
	"math"
	"sort"

	"greensched/internal/power"
	"greensched/internal/simtime"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// This file is the simulator's generic control-plane hook: an external
// controller (package consolidation, or any future autonomic manager)
// observes node state on a fixed virtual-time cadence and issues
// power-on/power-off decisions. The §IV-C adaptive experiment predates
// this hook and drives its pool directly (adaptive.go); new
// controllers should use Config.OnControl.

// NodeView is the controller-visible state of one SED at a tick.
type NodeView struct {
	Name    string
	Cluster string
	State   power.State
	Slots   int     // concurrent task capacity
	Running int     // tasks executing now
	Queued  int     // tasks waiting in the SED queue
	Idle    float64 // seconds since the node last had work; 0 when busy

	// Candidate reports whether the SED may be elected for new work.
	// PowerOff clears it; PowerOn restores it.
	Candidate bool

	// BootSec and BootW are the node's boot transient (duration and
	// draw), and TaskW its marginal per-core busy draw — the quantities
	// controllers weigh when choosing between booting dark capacity and
	// preempting in place.
	BootSec float64
	BootW   float64
	TaskW   float64

	// PowerW is the node's instantaneous draw at the tick — the signal
	// monitoring modules (e.g. a thermal room model) integrate.
	PowerW float64

	// QueuedAtRisk reports a queued deadline task that waiting for the
	// node's running work would provably breach while an immediate
	// start would still meet — the preemption trigger: queued work
	// cannot migrate (the SED keeps its problem), so booting capacity
	// elsewhere cannot rescue it, but checkpointing a victim here can.
	QueuedAtRisk bool
}

// RunningView is the controller-visible state of one executing task —
// the victim description Control.Preempt decisions rank on.
type RunningView struct {
	TaskID int
	Class  string
	// Deadline and ValueUSD are the task's resolved terms (deadline 0
	// = none).
	Deadline float64
	ValueUSD float64
	// Ops is the work this execution segment set out to do (remaining
	// work after any earlier checkpoints).
	Ops float64
	// Started is when the current segment began; RemainingSec the run
	// time left on this node if undisturbed.
	Started      float64
	RemainingSec float64
	// RedoSec estimates the execution seconds a checkpoint now would
	// re-execute after restart (the restart penalty's share of the
	// elapsed segment); 0 while preemption is disabled.
	RedoSec float64
}

// Control is the surface handed to Config.OnControl each tick. All
// operations happen at the tick's virtual time.
type Control interface {
	// Nodes lists every SED in platform order.
	Nodes() []NodeView
	// Unplaced counts submitted tasks that no server could accept
	// (they retry every Config.RetryEvery virtual seconds) — backlog
	// pressure that the controller should answer by powering nodes
	// on or restoring candidacy.
	Unplaced() int
	// PowerOff shuts an idle node down and removes it from candidacy.
	// It refuses nodes that are not On, still have work, or are the
	// last candidate.
	PowerOff(name string) error
	// PowerOn boots an Off node (or restores candidacy to a drained
	// one). Capacity becomes available after the node's boot time.
	PowerOn(name string) error
	// SetCandidate gates a node's eligibility for new work without
	// changing its power state: a powered-on non-candidate finishes
	// its accepted queue but receives no further elections. Revoking
	// every candidacy defers all new arrivals (they retry every
	// Config.RetryEvery seconds) — the primitive behind shifting
	// deferrable work into low-carbon windows.
	SetCandidate(name string, candidate bool) error
	// PendingSlack returns the tightest deadline margin across tasks
	// that have not started yet (unplaced arrivals and queued work):
	// min over them of deadline − now − best-case execution time. ok
	// is false when no pending task carries a deadline. Controllers
	// that defer work or shut capacity down must keep this positive —
	// a deferral past it provably breaks an admitted task's SLA.
	PendingSlack() (slack float64, ok bool)
	// Running lists the named node's executing tasks (sorted by task
	// ID) — the victim candidates for Preempt. Nil for unknown nodes.
	Running(name string) []RunningView
	// Preempt checkpoints one running task: its completed Ops fraction
	// is retained minus Config.Preemption's restart penalty, the
	// executed segment keeps its energy/CO2 charge, the remainder
	// re-enters election, and the freed slot immediately drains the
	// node's queue. It refuses unknown nodes or tasks, runs without
	// Config.Preemption, zero-progress segments, and victims whose own
	// deadline the restart would breach — preemption may never
	// manufacture a new SLA miss.
	Preempt(name string, taskID int) error
}

// runnerControl implements Control against a Runner at a fixed tick
// time.
type runnerControl struct {
	r   *Runner
	now float64
}

func (c *runnerControl) Nodes() []NodeView {
	out := make([]NodeView, 0, len(c.r.seds))
	for _, sed := range c.r.seds {
		spec := sed.node.Spec
		v := NodeView{
			Name:      spec.Name,
			Cluster:   spec.Cluster,
			State:     sed.node.State(),
			Slots:     sed.slots,
			Running:   len(sed.running),
			Queued:    sed.qlen(),
			Candidate: sed.candidate,
			BootSec:   spec.BootSec,
			BootW:     float64(spec.BootW),
			TaskW:     float64(spec.PeakW-spec.IdleW) / float64(spec.Cores),
			PowerW:    sed.node.Power(),
		}
		if v.State == power.On && v.Running == 0 && v.Queued == 0 {
			v.Idle = c.now - sed.idleAt
		}
		v.QueuedAtRisk = c.queuedAtRisk(sed)
		out = append(out, v)
	}
	return out
}

// queuedAtRisk reports a queued deadline task on sed that waiting for
// the earliest running slot would provably breach while an immediate
// start would still meet.
func (c *runnerControl) queuedAtRisk(sed *sedState) bool {
	if sed.qlen() == 0 || sed.freeSlots() > 0 {
		return false
	}
	// Earliest slot release: the head-of-queue wait under any work-
	// conserving discipline.
	wait := math.Inf(1)
	for _, rt := range sed.running {
		if w := rt.finish.At.Seconds() - c.now; w < wait {
			wait = w
		}
	}
	if wait < 0 {
		wait = 0
	}
	for _, p := range sed.queued() {
		view := c.r.taskView(p.task)
		if view.Deadline <= 0 {
			continue
		}
		exec := sed.node.Spec.TaskSeconds(p.task.Ops)
		if c.now+wait+exec > view.Deadline && c.now+exec <= view.Deadline {
			return true
		}
	}
	return false
}

func (c *runnerControl) Running(name string) []RunningView {
	sed := c.r.sedByName(name)
	if sed == nil {
		return nil
	}
	out := make([]RunningView, 0, len(sed.running))
	for _, rt := range sed.running {
		terms := c.r.victimTerms(rt.task)
		rv := RunningView{
			TaskID:       rt.task.ID,
			Class:        rt.task.Class,
			Deadline:     terms.Deadline,
			ValueUSD:     terms.ValueUSD,
			Ops:          rt.task.Ops,
			Started:      rt.start,
			RemainingSec: rt.finish.At.Seconds() - c.now,
		}
		if pre := c.r.pre; pre != nil {
			done := c.r.doneOps(c.now, rt)
			rv.RedoSec = sed.node.Spec.TaskSeconds(pre.RedoneOps(done))
		}
		out = append(out, rv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TaskID < out[j].TaskID })
	return out
}

func (c *runnerControl) Preempt(name string, taskID int) error {
	if c.r.pre == nil {
		return fmt.Errorf("sim: Preempt of %s/%d with preemption disabled", name, taskID)
	}
	sed := c.r.sedByName(name)
	if sed == nil {
		return fmt.Errorf("sim: Preempt on unknown node %q", name)
	}
	rt, ok := sed.running[taskID]
	if !ok {
		return fmt.Errorf("sim: Preempt of task %d not running on %s", taskID, name)
	}
	if c.now <= rt.start {
		return fmt.Errorf("sim: Preempt of task %d with zero progress on %s", taskID, name)
	}
	// The freed slot goes to the queue first, so the victim waits at
	// least that task's execution before it can restart here — that
	// occupancy must not push the victim past its own deadline.
	occupied := 0.0
	if sed.qlen() > 0 {
		occupied = sed.node.Spec.TaskSeconds(sed.queued()[c.r.nextQueued(sed)].task.Ops)
	}
	if !sla.SafeToDisplace(c.now, occupied, c.r.restartRemainingSec(c.now, sed, rt), c.r.victimTerms(rt.task)) {
		return fmt.Errorf("sim: Preempt of task %d would breach its own deadline", taskID)
	}
	c.r.preempt(c.now, sed, rt)
	c.r.drainQueue(c.now, sed)
	return nil
}

func (c *runnerControl) Unplaced() int { return c.r.unplaced }

func (c *runnerControl) PendingSlack() (float64, bool) {
	best, ok := 0.0, false
	consider := func(t workload.Task, execSec float64) {
		view := c.r.taskView(t)
		if view.Deadline <= 0 {
			return
		}
		slack := view.Deadline - c.now - execSec
		if !ok || slack < best {
			best, ok = slack, true
		}
	}
	// Unplaced tasks can still land anywhere: best case is the
	// platform's fastest node.
	for _, t := range c.r.waiting {
		consider(t, c.r.bestExec(t.Ops))
	}
	// Queued tasks cannot migrate (the SED keeps its problem, §III-A
	// step 5): their bound is the owning node's own execution time.
	for _, sed := range c.r.seds {
		for _, p := range sed.queued() {
			consider(p.task, sed.node.Spec.TaskSeconds(p.task.Ops))
		}
	}
	return best, ok
}

func (c *runnerControl) PowerOff(name string) error {
	sed := c.r.sedByName(name)
	if sed == nil {
		return fmt.Errorf("sim: PowerOff of unknown node %q", name)
	}
	if sed.node.State() != power.On {
		return fmt.Errorf("sim: PowerOff of %s in state %v", name, sed.node.State())
	}
	if len(sed.running) > 0 || sed.qlen() > 0 {
		return fmt.Errorf("sim: PowerOff of %s with %d running / %d queued tasks",
			name, len(sed.running), sed.qlen())
	}
	if c.candidates() <= 1 && sed.candidate {
		return fmt.Errorf("sim: PowerOff of %s would leave no candidate", name)
	}
	if err := sed.node.PowerOff(c.now); err != nil {
		return err
	}
	sed.candidate = false
	c.r.res.Shutdowns++
	return nil
}

func (c *runnerControl) PowerOn(name string) error {
	sed := c.r.sedByName(name)
	if sed == nil {
		return fmt.Errorf("sim: PowerOn of unknown node %q", name)
	}
	switch sed.node.State() {
	case power.On:
		sed.candidate = true // drained node returning to candidacy
		return nil
	case power.Booting:
		return nil // boot already in flight
	}
	done, err := sed.node.PowerOn(c.now)
	if err != nil {
		return err
	}
	sed.candidate = true
	sed.failed = false // booting a crashed node repairs it
	c.r.res.Boots++
	idx := sed.idx
	c.r.eng.At(simtime.Time(done), "boot-done", func(t simtime.Time) {
		s := c.r.seds[idx]
		if s.node.State() != power.Booting {
			return
		}
		if err := s.node.BootDone(t.Seconds()); err != nil {
			panic(fmt.Sprintf("sim: %v", err))
		}
		s.idleAt = t.Seconds()
	})
	return nil
}

func (c *runnerControl) SetCandidate(name string, candidate bool) error {
	sed := c.r.sedByName(name)
	if sed == nil {
		return fmt.Errorf("sim: SetCandidate of unknown node %q", name)
	}
	sed.candidate = candidate
	return nil
}

func (c *runnerControl) candidates() int {
	n := 0
	for _, sed := range c.r.seds {
		if sed.candidate {
			n++
		}
	}
	return n
}

// sedByName resolves a node name via the platform index.
func (r *Runner) sedByName(name string) *sedState {
	idx := r.cfg.Platform.Find(name)
	if idx < 0 {
		return nil
	}
	return r.seds[idx]
}

// scheduleControl arms the recurring controller tick: every module's
// OnTick runs in stack order against one shared Control surface (the
// legacy Config.OnControl hook arrives here as an adapter). Ticking
// stops once every task has resolved so the event queue can drain.
func (r *Runner) scheduleControl(every float64) {
	r.eng.After(every, "control", func(t simtime.Time) {
		if r.resolved() >= len(r.cfg.Tasks) {
			return
		}
		ctl := &runnerControl{r: r, now: t.Seconds()}
		for _, m := range r.mods {
			m.OnTick(t.Seconds(), ctl)
		}
		r.scheduleControl(every)
	})
}
