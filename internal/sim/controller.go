package sim

import (
	"fmt"

	"greensched/internal/power"
	"greensched/internal/simtime"
	"greensched/internal/workload"
)

// This file is the simulator's generic control-plane hook: an external
// controller (package consolidation, or any future autonomic manager)
// observes node state on a fixed virtual-time cadence and issues
// power-on/power-off decisions. The §IV-C adaptive experiment predates
// this hook and drives its pool directly (adaptive.go); new
// controllers should use Config.OnControl.

// NodeView is the controller-visible state of one SED at a tick.
type NodeView struct {
	Name    string
	Cluster string
	State   power.State
	Slots   int     // concurrent task capacity
	Running int     // tasks executing now
	Queued  int     // tasks waiting in the SED queue
	Idle    float64 // seconds since the node last had work; 0 when busy

	// Candidate reports whether the SED may be elected for new work.
	// PowerOff clears it; PowerOn restores it.
	Candidate bool
}

// Control is the surface handed to Config.OnControl each tick. All
// operations happen at the tick's virtual time.
type Control interface {
	// Nodes lists every SED in platform order.
	Nodes() []NodeView
	// Unplaced counts submitted tasks that no server could accept
	// (they retry every Config.RetryEvery virtual seconds) — backlog
	// pressure that the controller should answer by powering nodes
	// on or restoring candidacy.
	Unplaced() int
	// PowerOff shuts an idle node down and removes it from candidacy.
	// It refuses nodes that are not On, still have work, or are the
	// last candidate.
	PowerOff(name string) error
	// PowerOn boots an Off node (or restores candidacy to a drained
	// one). Capacity becomes available after the node's boot time.
	PowerOn(name string) error
	// SetCandidate gates a node's eligibility for new work without
	// changing its power state: a powered-on non-candidate finishes
	// its accepted queue but receives no further elections. Revoking
	// every candidacy defers all new arrivals (they retry every
	// Config.RetryEvery seconds) — the primitive behind shifting
	// deferrable work into low-carbon windows.
	SetCandidate(name string, candidate bool) error
	// PendingSlack returns the tightest deadline margin across tasks
	// that have not started yet (unplaced arrivals and queued work):
	// min over them of deadline − now − best-case execution time. ok
	// is false when no pending task carries a deadline. Controllers
	// that defer work or shut capacity down must keep this positive —
	// a deferral past it provably breaks an admitted task's SLA.
	PendingSlack() (slack float64, ok bool)
}

// runnerControl implements Control against a Runner at a fixed tick
// time.
type runnerControl struct {
	r   *Runner
	now float64
}

func (c *runnerControl) Nodes() []NodeView {
	out := make([]NodeView, 0, len(c.r.seds))
	for _, sed := range c.r.seds {
		v := NodeView{
			Name:      sed.node.Spec.Name,
			Cluster:   sed.node.Spec.Cluster,
			State:     sed.node.State(),
			Slots:     sed.slots,
			Running:   len(sed.running),
			Queued:    len(sed.queue),
			Candidate: sed.candidate,
		}
		if v.State == power.On && v.Running == 0 && v.Queued == 0 {
			v.Idle = c.now - sed.idleAt
		}
		out = append(out, v)
	}
	return out
}

func (c *runnerControl) Unplaced() int { return c.r.unplaced }

func (c *runnerControl) PendingSlack() (float64, bool) {
	best, ok := 0.0, false
	consider := func(t workload.Task, execSec float64) {
		view := c.r.taskView(t)
		if view.Deadline <= 0 {
			return
		}
		slack := view.Deadline - c.now - execSec
		if !ok || slack < best {
			best, ok = slack, true
		}
	}
	// Unplaced tasks can still land anywhere: best case is the
	// platform's fastest node.
	for _, t := range c.r.waiting {
		consider(t, c.r.bestExec(t.Ops))
	}
	// Queued tasks cannot migrate (the SED keeps its problem, §III-A
	// step 5): their bound is the owning node's own execution time.
	for _, sed := range c.r.seds {
		for _, p := range sed.queue {
			consider(p.task, sed.node.Spec.TaskSeconds(p.task.Ops))
		}
	}
	return best, ok
}

func (c *runnerControl) PowerOff(name string) error {
	sed := c.r.sedByName(name)
	if sed == nil {
		return fmt.Errorf("sim: PowerOff of unknown node %q", name)
	}
	if sed.node.State() != power.On {
		return fmt.Errorf("sim: PowerOff of %s in state %v", name, sed.node.State())
	}
	if len(sed.running) > 0 || len(sed.queue) > 0 {
		return fmt.Errorf("sim: PowerOff of %s with %d running / %d queued tasks",
			name, len(sed.running), len(sed.queue))
	}
	if c.candidates() <= 1 && sed.candidate {
		return fmt.Errorf("sim: PowerOff of %s would leave no candidate", name)
	}
	if err := sed.node.PowerOff(c.now); err != nil {
		return err
	}
	sed.candidate = false
	c.r.res.Shutdowns++
	return nil
}

func (c *runnerControl) PowerOn(name string) error {
	sed := c.r.sedByName(name)
	if sed == nil {
		return fmt.Errorf("sim: PowerOn of unknown node %q", name)
	}
	switch sed.node.State() {
	case power.On:
		sed.candidate = true // drained node returning to candidacy
		return nil
	case power.Booting:
		return nil // boot already in flight
	}
	done, err := sed.node.PowerOn(c.now)
	if err != nil {
		return err
	}
	sed.candidate = true
	c.r.res.Boots++
	idx := sed.idx
	c.r.eng.At(simtime.Time(done), "boot-done", func(t simtime.Time) {
		s := c.r.seds[idx]
		if s.node.State() != power.Booting {
			return
		}
		if err := s.node.BootDone(t.Seconds()); err != nil {
			panic(fmt.Sprintf("sim: %v", err))
		}
		s.idleAt = t.Seconds()
	})
	return nil
}

func (c *runnerControl) SetCandidate(name string, candidate bool) error {
	sed := c.r.sedByName(name)
	if sed == nil {
		return fmt.Errorf("sim: SetCandidate of unknown node %q", name)
	}
	sed.candidate = candidate
	return nil
}

func (c *runnerControl) candidates() int {
	n := 0
	for _, sed := range c.r.seds {
		if sed.candidate {
			n++
		}
	}
	return n
}

// sedByName resolves a node name via the platform index.
func (r *Runner) sedByName(name string) *sedState {
	idx := r.cfg.Platform.Find(name)
	if idx < 0 {
		return nil
	}
	return r.seds[idx]
}

// scheduleControl arms the recurring controller tick. Ticking stops
// once every task has completed so the event queue can drain.
func (r *Runner) scheduleControl(every float64) {
	r.eng.After(every, "control", func(t simtime.Time) {
		if r.resolved() >= len(r.cfg.Tasks) {
			return
		}
		r.cfg.OnControl(t.Seconds(), &runnerControl{r: r, now: t.Seconds()})
		r.scheduleControl(every)
	})
}
