package sim

import (
	"testing"

	"greensched/internal/sched"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

func TestNewScenarioDefaults(t *testing.T) {
	cfg := NewScenario(smallPlatform(), tasks(4, 1e11, 1))
	if cfg.Policy == nil || cfg.Policy.Name() != "GREENPERF" {
		t.Errorf("default policy %v, want GREENPERF", cfg.Policy)
	}
	cfg = NewScenario(smallPlatform(), tasks(4, 1e11, 1),
		WithPolicy(sched.New(sched.Random)),
		WithSeed(7),
		WithSlotsPerNode(1),
		WithTick(60),
		WithRetryEvery(5),
		WithQueueFactor(2),
		WithContention(0.1),
		WithExecJitter(0.05),
		WithSampleEvery(10),
		WithStatic(),
		WithModules(&HookModule{}, &HookModule{}),
	)
	if cfg.Policy.Name() != "RANDOM" || cfg.Seed != 7 || cfg.SlotsPerNode != 1 ||
		cfg.ControlEvery != 60 || cfg.RetryEvery != 5 || cfg.QueueFactor != 2 ||
		cfg.Contention != 0.1 || cfg.ExecJitter != 0.05 || cfg.SampleEvery != 10 ||
		!cfg.Static || len(cfg.Modules) != 2 {
		t.Errorf("options not applied: %+v", cfg)
	}
}

// TestOnArrivalObservesFirstSubmissionsOnly: the hook fires once per
// task (never for retries or queue movements) and may mutate the task
// before election.
func TestOnArrivalObservesFirstSubmissionsOnly(t *testing.T) {
	seen := map[int]int{}
	res, err := Run(NewScenario(smallPlatform(), tasks(20, 1e11, 2),
		WithSeed(5),
		WithModules(&HookModule{OnArrivalFunc: func(_ float64, task *workload.Task) {
			seen[task.ID]++
		}}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 {
		t.Fatalf("completed %d", res.Completed)
	}
	if len(seen) != 20 {
		t.Fatalf("hook saw %d distinct tasks, want 20", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d observed %d times, want 1", id, n)
		}
	}
}

// TestOnArrivalCanMutateTask: halving every task's Ops at arrival must
// shorten the run — proof the election and execution see the mutation.
func TestOnArrivalCanMutateTask(t *testing.T) {
	run := func(halve bool) *Result {
		var mods []Module
		if halve {
			mods = append(mods, &HookModule{OnArrivalFunc: func(_ float64, task *workload.Task) {
				task.Ops /= 2
			}})
		}
		res, err := Run(NewScenario(smallPlatform(), tasks(10, 4e11, 1),
			WithSeed(3), WithModules(mods...)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full, halved := run(false), run(true)
	if halved.Makespan >= full.Makespan {
		t.Errorf("halved-ops run (%.0f s) not shorter than full run (%.0f s)",
			halved.Makespan, full.Makespan)
	}
}

// TestOnArrivalMutationReachesSLATerms: a module that reclassifies a
// task at arrival must see the new class's terms in the ledger —
// terms re-resolve after the OnArrival hooks, they are not frozen at
// Init.
func TestOnArrivalMutationReachesSLATerms(t *testing.T) {
	run := func(upgrade bool) *Result {
		mods := []Module{&SLAModule{Config: &sla.Config{}}} // default catalog, ledger only
		if upgrade {
			mods = append([]Module{&HookModule{OnArrivalFunc: func(_ float64, task *workload.Task) {
				task.Class = sla.ClassInteractive // $2.00 instead of batch's $0.05
			}}}, mods...)
		}
		batch, err := workload.BurstThenRate{Total: 6, Burst: 2, Rate: 0.05, Ops: 1e11,
			Class: sla.ClassBatch}.Tasks()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(NewScenario(smallPlatform(), batch, WithSeed(2), WithModules(mods...)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, upgraded := run(false), run(true)
	if plain.SLA == nil || upgraded.SLA == nil {
		t.Fatal("ledger missing")
	}
	if upgraded.SLA.EarnedUSD <= plain.SLA.EarnedUSD {
		t.Errorf("reclassified run earned $%.2f, not above $%.2f — OnArrival mutation never reached the terms",
			upgraded.SLA.EarnedUSD, plain.SLA.EarnedUSD)
	}
	for _, rec := range upgraded.Records {
		if rec.Class != sla.ClassInteractive {
			t.Errorf("task %d kept class %q", rec.ID, rec.Class)
		}
	}
}

func TestFinalizeSeesSettledTotals(t *testing.T) {
	var energy float64
	var completed int
	_, err := Run(NewScenario(smallPlatform(), tasks(8, 1e11, 2),
		WithSeed(1),
		WithModules(&HookModule{FinalizeFunc: func(res *Result) {
			energy = float64(res.EnergyJ)
			completed = res.Completed
		}}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if completed != 8 || energy <= 0 {
		t.Errorf("finalize saw completed=%d energy=%v", completed, energy)
	}
}

func TestDuplicateModulesRejected(t *testing.T) {
	slaMod := func() Module { return &SLAModule{Config: &sla.Config{}} }
	preMod := func() Module { return &PreemptModule{Preemption: &sla.Preemption{}} }
	cases := map[string]Config{
		"two sla modules": NewScenario(smallPlatform(), tasks(2, 1e11, 1),
			WithModules(slaMod(), slaMod())),
		"legacy sla plus module": func() Config {
			c := NewScenario(smallPlatform(), tasks(2, 1e11, 1), WithModules(slaMod()))
			c.SLA = &sla.Config{}
			return c
		}(),
		"two preempt modules": NewScenario(smallPlatform(), tasks(2, 1e11, 1),
			WithModules(preMod(), preMod())),
		"two carbon modules": NewScenario(smallPlatform(), tasks(2, 1e11, 1),
			WithModules(&CarbonModule{Profile: compatProfile()}, &CarbonModule{Profile: compatProfile()})),
		"carbon module without profile": NewScenario(smallPlatform(), tasks(2, 1e11, 1),
			WithModules(&CarbonModule{})),
		"sla module without config": NewScenario(smallPlatform(), tasks(2, 1e11, 1),
			WithModules(&SLAModule{})),
		"preempt module without semantics": NewScenario(smallPlatform(), tasks(2, 1e11, 1),
			WithModules(&PreemptModule{})),
	}
	for name, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
