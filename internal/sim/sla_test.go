package sim

import (
	"math"
	"testing"

	"greensched/internal/carbon"
	"greensched/internal/cluster"
	"greensched/internal/sched"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// slaPlatform is a tiny two-node platform for deterministic SLA runs.
func slaPlatform() *cluster.Platform {
	return cluster.MustPlatform(cluster.NewNodes("taurus", 2))
}

// TestSLAAdmissionRejectsHopeless: a hard-deadline task no node can
// serve in time is refused, forfeits its value, and the run still
// terminates cleanly with the rejection on the books.
func TestSLAAdmissionRejectsHopeless(t *testing.T) {
	// taurus: 9e9 flops/core → 2.7e12 ops = 300 s best case.
	tasks := []workload.Task{
		{ID: 0, Ops: 2.7e12, Submit: 0, Deadline: 100, Value: 5, Class: "hard"},
		{ID: 1, Ops: 2.7e12, Submit: 0, Deadline: 1000, Value: 5, Class: "hard"},
	}
	cat := sla.Catalog{"hard": {Name: "hard", Curve: sla.HardDrop{}}}
	res, err := Run(Config{
		Platform: slaPlatform(),
		Policy:   sched.New(sched.GreenPerf),
		Tasks:    tasks,
		Explore:  true,
		Seed:     1,
		SLA:      &sla.Config{Catalog: cat, Admission: &sla.Admission{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Rejected != 1 {
		t.Fatalf("completed %d rejected %d, want 1/1", res.Completed, res.Rejected)
	}
	if len(res.Rejections) != 1 || res.Rejections[0].ID != 0 || res.Rejections[0].ValueUSD != 5 {
		t.Fatalf("rejections %+v", res.Rejections)
	}
	if res.SLA == nil {
		t.Fatal("SLA summary missing")
	}
	if res.SLA.EarnedUSD != 5 || res.SLA.ForfeitedUSD != 5 || res.SLA.Rejected != 1 {
		t.Fatalf("ledger %+v", res.SLA)
	}
	// The completed record carries its terms and positive slack.
	rec := res.Records[0]
	if rec.ID != 1 || rec.EarnedUSD != 5 || rec.Deadline != 1000 {
		t.Fatalf("record %+v", rec)
	}
	if slack, ok := rec.Slack(); !ok || slack <= 0 {
		t.Fatalf("slack %v %v", slack, ok)
	}
}

// TestSLAEDFQueueBeatsFIFO: under an identical saturated backlog, the
// EDF discipline completes the deadline task on time where FIFO
// forfeits it — the core queue-reordering claim.
func TestSLAEDFQueueBeatsFIFO(t *testing.T) {
	// One node, one slot: three 300 s batch tasks arrive first, then a
	// deadline task due 700 s after its submission.
	platform := cluster.MustPlatform(cluster.NewNodes("taurus", 1))
	var tasks []workload.Task
	for i := 0; i < 3; i++ {
		tasks = append(tasks, workload.Task{ID: i, Ops: 2.7e12, Submit: 0})
	}
	tasks = append(tasks, workload.Task{ID: 3, Ops: 9e10, Submit: 1, Deadline: 701, Value: 2, Class: "hard"})
	cat := sla.Catalog{"hard": {Name: "hard", Curve: sla.HardDrop{}}}

	run := func(order sched.TaskOrder) *Result {
		res, err := Run(Config{
			Platform:     platform,
			Policy:       sched.New(sched.GreenPerf),
			Tasks:        tasks,
			Explore:      true,
			Seed:         1,
			SlotsPerNode: 1,
			SLA:          &sla.Config{Catalog: cat, Order: order},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fifo := run(nil)
	edf := run(sched.NewOrder(sched.EDF))
	if fifo.DeadlineMisses == 0 {
		t.Fatalf("FIFO run unexpectedly met the deadline (misses=%d)", fifo.DeadlineMisses)
	}
	if edf.DeadlineMisses != 0 {
		t.Fatalf("EDF run missed %d deadlines", edf.DeadlineMisses)
	}
	if fifo.SLA.EarnedUSD >= edf.SLA.EarnedUSD {
		t.Fatalf("EDF must out-earn FIFO: %v vs %v", edf.SLA.EarnedUSD, fifo.SLA.EarnedUSD)
	}
}

// TestSLAPerTaskCarbonAttribution: with a carbon profile attached,
// every completed record carries grams, and their sum stays below the
// whole-platform total (which also pays idle and boot emissions).
func TestSLAPerTaskCarbonAttribution(t *testing.T) {
	profile := carbon.MustProfile(carbon.SiteProfile{
		Site: "grid", Signal: carbon.Constant{G: 500},
	})
	burst, err := workload.BurstThenRate{Total: 8, Burst: 8, Ops: 2.7e12}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Platform: slaPlatform(),
		Policy:   sched.New(sched.GreenPerf),
		Tasks:    burst,
		Explore:  true,
		Seed:     1,
		Carbon:   profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, rec := range res.Records {
		if rec.CO2Grams <= 0 {
			t.Fatalf("record %d has no carbon attribution: %+v", rec.ID, rec)
		}
		// Constant signal: grams must equal the exact conversion of
		// the task's energy share.
		want := carbon.Grams(profile.Site("taurus"), rec.EnergyShareJ, rec.Start, rec.Finish)
		if math.Abs(rec.CO2Grams-want) > 1e-9 {
			t.Fatalf("record %d grams %v, want %v", rec.ID, rec.CO2Grams, want)
		}
		sum += rec.CO2Grams
	}
	if sum <= 0 || sum > res.CO2Grams {
		t.Fatalf("task-attributed %v g must be positive and below platform total %v g", sum, res.CO2Grams)
	}
	if res.GramsPerTask() <= 0 || res.JoulesPerTask() <= 0 {
		t.Fatalf("per-task aggregates: %v g, %v J", res.GramsPerTask(), res.JoulesPerTask())
	}
}

// TestControlPendingSlack: the controller surface reports the
// tightest pending deadline across queued and unplaced work.
func TestControlPendingSlack(t *testing.T) {
	platform := cluster.MustPlatform(cluster.NewNodes("taurus", 1))
	// Slot occupied by a long batch task; a deadline task queues.
	tasks := []workload.Task{
		{ID: 0, Ops: 2.7e13, Submit: 0},                                           // ≈3000 s
		{ID: 1, Ops: 2.7e12, Submit: 10, Deadline: 2000, Value: 1, Class: "hard"}, // queued
		{ID: 2, Ops: 2.7e12, Submit: 20, Deadline: 5000, Value: 1, Class: "hard"}, // queued, looser
	}
	cat := sla.Catalog{"hard": {Name: "hard", Curve: sla.HardDrop{}}}
	var sawSlack []float64
	_, err := Run(Config{
		Platform:     platform,
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		SLA:          &sla.Config{Catalog: cat},
		ControlEvery: 100,
		OnControl: func(now float64, ctl Control) {
			if slack, ok := ctl.PendingSlack(); ok {
				sawSlack = append(sawSlack, slack)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sawSlack) == 0 {
		t.Fatal("controller never saw pending deadline slack")
	}
	// First observation at t=100: tightest is task 1 with
	// 2000 − 100 − 300 = 1600.
	if math.Abs(sawSlack[0]-1600) > 1e-6 {
		t.Fatalf("first slack %v, want 1600", sawSlack[0])
	}
	// Slack shrinks tick over tick while the task stays queued.
	if len(sawSlack) > 1 && sawSlack[1] >= sawSlack[0] {
		t.Fatalf("slack did not shrink: %v", sawSlack[:2])
	}
}

// TestPendingSlackUsesOwningNodeForQueuedTasks: a queued task cannot
// migrate, so its slack bound must use the owning (possibly slow)
// node's execution time, not the platform's fastest.
func TestPendingSlackUsesOwningNodeForQueuedTasks(t *testing.T) {
	platform := cluster.MustPlatform(
		cluster.NewNodes("taurus", 1),     // 9.0e9 flops/core
		cluster.NewNodes("sagittaire", 1), // 4.6e9 flops/core
	)
	r, err := NewRunner(Config{
		Platform: platform,
		Policy:   sched.New(sched.GreenPerf),
		Tasks:    []workload.Task{{ID: 0, Ops: 1e9, Submit: 0}},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A deadline task stuck in the slow node's queue: 2.7e12 ops take
	// ≈587 s there but only 300 s on taurus.
	slow := r.sedByName("sagittaire-0")
	slow.queue = append(slow.queue, pendingTask{task: workload.Task{ID: 9, Ops: 2.7e12, Deadline: 1000}})
	ctl := &runnerControl{r: r, now: 0}
	slack, ok := ctl.PendingSlack()
	if !ok {
		t.Fatal("no pending slack reported")
	}
	wantExec := slow.node.Spec.TaskSeconds(2.7e12)
	if math.Abs(slack-(1000-wantExec)) > 1e-9 {
		t.Fatalf("slack %v, want %v (owning node's exec, not the fastest node's)", slack, 1000-wantExec)
	}
}

// TestSLAUrgentBypassElectsNonCandidates: with the express lane on, a
// deadline task is elected onto a powered-on node whose candidacy a
// controller revoked, while best-effort work stays deferred.
func TestSLAUrgentBypassElectsNonCandidates(t *testing.T) {
	platform := cluster.MustPlatform(cluster.NewNodes("taurus", 1))
	tasks := []workload.Task{
		{ID: 0, Ops: 9e10, Submit: 50, Deadline: 500, Value: 1, Class: "hard"},
		{ID: 1, Ops: 9e10, Submit: 50}, // best effort: must wait for candidacy
	}
	cat := sla.Catalog{"hard": {Name: "hard", Curve: sla.HardDrop{}}}
	reopened := false
	res, err := Run(Config{
		Platform:     platform,
		Policy:       sched.New(sched.GreenPerf),
		Tasks:        tasks,
		Explore:      true,
		Seed:         1,
		RetryEvery:   10,
		ControlEvery: 10,
		OnControl: func(now float64, ctl Control) {
			// Revoke candidacy before the arrivals; restore late.
			if now < 1000 {
				_ = ctl.SetCandidate("taurus-0", false)
			} else if !reopened {
				_ = ctl.SetCandidate("taurus-0", true)
				reopened = true
			}
		},
		SLA: &sla.Config{Catalog: cat, UrgentBypass: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var hard, batch TaskRecord
	for _, rec := range res.Records {
		if rec.ID == 0 {
			hard = rec
		} else {
			batch = rec
		}
	}
	if hard.Deadline == 0 || hard.Finish > hard.Deadline {
		t.Fatalf("express task missed its deadline: %+v", hard)
	}
	if batch.Start < 1000 {
		t.Fatalf("deferred best-effort task started at %v, before candidacy reopened", batch.Start)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses %d", res.DeadlineMisses)
	}
}
