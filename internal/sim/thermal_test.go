// External test package: it imports package thermal, which itself
// depends on sim (thermal.Module), so an in-package test would close
// an import cycle.
package sim_test

import (
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/provision"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/thermal"
)

// thermalConfig builds an adaptive run where temperature is measured
// from the room model instead of injected: constant cheap electricity
// invites the planner to 100% of nodes, but full load heats the room
// past the 25 °C rule, forcing it back down — the §IV-C control loop
// closed end to end.
func thermalConfig(t *testing.T, seed int64) sim.AdaptiveConfig {
	t.Helper()
	store := provision.NewStore()
	store.Put(provision.Record{Value: 0, Cost: 0.2, Temperature: 21})
	planner := provision.NewPlanner(12, 4)
	planner.MinNodes = 2
	// Coefficients chosen so a fully loaded platform (~3.9 kW) heats
	// the hottest inlet past 25 °C while a 4-node pool stays in range.
	d, err := thermal.UniformRack(12, 4, 0.0055, 0.001, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := thermal.NewMonitor(21, d, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return sim.AdaptiveConfig{
		Platform: cluster.PaperPlatform(),
		Planner:  planner,
		Store:    store,
		Policy:   sched.New(sched.GreenPerf),
		TaskOps:  1.8e12,
		Horizon:  200 * 60,
		Thermal:  mon,
		Seed:     seed,
	}
}

func TestThermalLoopThrottlesHeat(t *testing.T) {
	res, err := sim.RunAdaptive(thermalConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// The cheap-cost rule must have ramped the pool up...
	sawHigh := false
	for _, d := range res.Decisions {
		if d.Pool >= 10 {
			sawHigh = true
		}
	}
	if !sawHigh {
		t.Fatal("planner never ramped toward the cheap-cost quota")
	}
	// ...and the measured heat must have triggered the heat rule.
	sawHeat := false
	for _, d := range res.Decisions {
		if d.RuleNow == "heat" {
			sawHeat = true
			if d.Status.Temperature <= provision.DefaultHeatThreshold {
				t.Fatalf("heat rule fired at %v °C", d.Status.Temperature)
			}
		}
	}
	if !sawHeat {
		t.Fatal("measured temperature never triggered the heat rule")
	}
	// After a heat-driven shrink the platform must cool back below
	// the threshold at some later decision (the loop regulates).
	cooled := false
	heatSeen := false
	for _, d := range res.Decisions {
		if d.RuleNow == "heat" {
			heatSeen = true
		}
		if heatSeen && d.RuleNow != "heat" {
			cooled = true
		}
	}
	if !cooled {
		t.Fatal("platform never cooled back below the threshold")
	}
}

func TestThermalMeasurementsLandInStore(t *testing.T) {
	cfg := thermalConfig(t, 2)
	res, err := sim.RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no work done")
	}
	// The store must now contain measured (unexpected) records with
	// plausible temperatures.
	recs := cfg.Store.Window(1, int64(cfg.Horizon))
	measured := 0
	for _, r := range recs {
		if r.Unexpected {
			measured++
			if r.Temperature < 20 || r.Temperature > 40 {
				t.Fatalf("implausible measured temperature %v", r.Temperature)
			}
			if r.Cost != 0.2 {
				t.Fatalf("measurement clobbered the cost: %v", r.Cost)
			}
		}
	}
	if measured < 10 {
		t.Fatalf("only %d measured records; expected one per planner tick", measured)
	}
}

// TestThermalTypedNilMonitorDisablesLoop: AdaptiveConfig.Thermal used
// to be a *thermal.Monitor; a nil pointer assigned through that type
// must still mean "no room model" now that the field is an interface,
// not pass the nil guard and panic on the first measurement.
func TestThermalTypedNilMonitorDisablesLoop(t *testing.T) {
	cfg := thermalConfig(t, 1)
	var mon *thermal.Monitor
	cfg.Thermal = mon
	res, err := sim.RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no work done")
	}
}

func TestThermalDeterminism(t *testing.T) {
	a, err := sim.RunAdaptive(thermalConfig(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunAdaptive(thermalConfig(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.Completed != b.Completed {
		t.Fatal("thermal adaptive run not deterministic")
	}
}
