package sim

import (
	"reflect"
	"testing"

	"greensched/internal/carbon"
	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// This file is the module redesign's back-compat contract: a
// legacy-style Config driving every one-slot hook (Carbon, SLA,
// Preemption, PolicyFunc, OnFinish, OnControl) must produce a
// byte-identical Result to the equivalent explicit module stack, and
// both paths must be deterministic. If an adapter ever drifts from its
// module, this is the test that fails.

// compatProfile builds a small two-site grid.
func compatProfile() *carbon.Profile {
	solar := carbon.SiteProfile{Site: "solar", Signal: carbon.Diurnal{
		MeanG: 300, AmplitudeG: 250, CleanHour: 13, RenewableMin: 0.1, RenewableMax: 0.8,
	}}
	fossil := carbon.SiteProfile{Site: "fossil", Signal: carbon.Diurnal{
		MeanG: 450, AmplitudeG: 50, CleanHour: 13,
	}}
	p := carbon.MustProfile(solar)
	if err := p.SetCluster("sagittaire", fossil); err != nil {
		panic(err)
	}
	return p
}

// compatTasks mixes deferrable batch with deadline-carrying urgent
// work so admission, EDF queues, deadline-aware wrapping and the
// preemption path all run.
func compatTasks(t *testing.T) []workload.Task {
	t.Helper()
	batch, err := workload.BurstThenRate{Total: 16, Burst: 8, Rate: 0.02, Ops: 9e11, Class: sla.ClassBatch}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	urgent, err := workload.BurstThenRate{Total: 10, Burst: 0, Rate: 0.01, Ops: 9e10,
		Class: sla.ClassInteractive, RelDeadline: 120}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	return workload.Merge(batch, workload.Shift(urgent, 30))
}

// compatController is a deterministic stand-in power manager: it wakes
// dark capacity for unplaced backlog and sheds nodes idle past a fixed
// timeout. Fresh state per run.
func compatController() func(now float64, ctl Control) {
	return func(now float64, ctl Control) {
		nodes := ctl.Nodes()
		if ctl.Unplaced() > 0 {
			for _, n := range nodes {
				if !n.State.Usable() {
					_ = ctl.PowerOn(n.Name)
					break
				}
			}
		}
		on := 0
		for _, n := range nodes {
			if n.State == power.On {
				on++
			}
		}
		for _, n := range nodes {
			if on <= 1 {
				break
			}
			if n.State == power.On && n.Running == 0 && n.Queued == 0 && n.Idle > 90 {
				if ctl.PowerOff(n.Name) == nil {
					on--
				}
			}
		}
	}
}

// deadlineWrap reproduces the per-task policy the SLA experiments
// historically installed through Config.PolicyFunc.
func deadlineWrap(base sched.Policy, catalog sla.Catalog) func(float64, workload.Task) sched.Policy {
	return func(now float64, t workload.Task) sched.Policy {
		terms := catalog.Resolve(t)
		if terms.Deadline <= 0 {
			return base
		}
		return sched.DeadlineAware{Base: base, Ops: t.Ops, Now: now, Deadline: terms.Deadline}
	}
}

func compatSLAConfig() *sla.Config {
	return &sla.Config{
		Catalog:      sla.DefaultCatalog(),
		Admission:    &sla.Admission{Margin: 1},
		Order:        sched.NewOrder(sched.EDF),
		UrgentBypass: true,
	}
}

// legacyConfig drives every deprecated one-slot hook at once.
func legacyConfig(t *testing.T, onFinish func(TaskRecord)) Config {
	base := sched.New(sched.GreenPerf)
	return Config{
		Platform:     smallPlatform(),
		Policy:       base,
		Tasks:        compatTasks(t),
		Explore:      true,
		Seed:         9,
		SlotsPerNode: 1,
		Carbon:       compatProfile(),
		SLA:          compatSLAConfig(),
		Preemption:   &sla.Preemption{RestartPenaltyFrac: 0.1},
		PolicyFunc:   deadlineWrap(base, sla.DefaultCatalog()),
		OnFinish:     onFinish,
		OnControl:    compatController(),
		ControlEvery: 30,
		RetryEvery:   15,
	}
}

// moduleConfig is the same scenario spelled as an explicit stack, in
// the adapters' documented order.
func moduleConfig(t *testing.T, onFinish func(TaskRecord)) Config {
	base := sched.New(sched.GreenPerf)
	wrap := deadlineWrap(base, sla.DefaultCatalog())
	return NewScenario(smallPlatform(), compatTasks(t),
		WithPolicy(base),
		WithExplore(),
		WithSeed(9),
		WithSlotsPerNode(1),
		WithTick(30),
		WithRetryEvery(15),
		WithModules(
			&CarbonModule{Profile: compatProfile()},
			&SLAModule{Config: compatSLAConfig()},
			&PreemptModule{Preemption: &sla.Preemption{RestartPenaltyFrac: 0.1}},
			&HookModule{WrapPolicyFunc: func(now float64, task workload.Task, _ sched.Policy) sched.Policy {
				return wrap(now, task)
			}},
			&HookModule{OnFinishFunc: onFinish},
			&HookModule{OnTickFunc: compatController()},
		),
	)
}

// TestLegacyConfigMatchesModuleStack: the two spellings produce
// byte-identical Results.
func TestLegacyConfigMatchesModuleStack(t *testing.T) {
	var legacySeen, moduleSeen []int
	legacy, err := Run(legacyConfig(t, func(rec TaskRecord) { legacySeen = append(legacySeen, rec.ID) }))
	if err != nil {
		t.Fatal(err)
	}
	modular, err := Run(moduleConfig(t, func(rec TaskRecord) { moduleSeen = append(moduleSeen, rec.ID) }))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, modular) {
		t.Errorf("legacy config and module stack diverged:\nlegacy:  %+v\nmodular: %+v", legacy, modular)
	}
	if !reflect.DeepEqual(legacySeen, moduleSeen) {
		t.Errorf("OnFinish hook saw different completions: %v vs %v", legacySeen, moduleSeen)
	}
	// The scenario must actually have exercised the whole surface.
	if legacy.CO2Grams <= 0 {
		t.Error("scenario never integrated emissions")
	}
	if legacy.SLA == nil || legacy.SLA.Completed == 0 {
		t.Error("scenario never ran the ledger")
	}
	if legacy.Boots == 0 && legacy.Shutdowns == 0 {
		t.Error("scenario never exercised the controller")
	}
}

// TestLegacyAndModulePathsDeterministic: each spelling replays
// byte-identically against itself.
func TestLegacyAndModulePathsDeterministic(t *testing.T) {
	for name, build := range map[string]func() Config{
		"legacy": func() Config { return legacyConfig(t, nil) },
		"module": func() Config { return moduleConfig(t, nil) },
	} {
		a, err := Run(build())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(build())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s path not deterministic", name)
		}
	}
}
