package sim

import (
	"math"
	"sort"
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/sched"
	"greensched/internal/workload"
)

func smallPlatform() *cluster.Platform {
	return cluster.MustPlatform(cluster.NewNodes("taurus", 2), cluster.NewNodes("sagittaire", 2))
}

func tasks(n int, ops, rate float64) []workload.Task {
	ts, err := workload.BurstThenRate{Total: n, Burst: min(n, 4), Rate: rate, Ops: ops}.Tasks()
	if err != nil {
		panic(err)
	}
	return ts
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunCompletesAllTasks(t *testing.T) {
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(40, 1e11, 2),
		Explore:  true,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 40 {
		t.Fatalf("completed %d, want 40", res.Completed)
	}
	if len(res.Records) != 40 {
		t.Fatalf("records %d, want 40", len(res.Records))
	}
	if res.Makespan <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("degenerate result: makespan=%v energy=%v", res.Makespan, res.EnergyJ)
	}
	total := 0
	for _, c := range res.PerNodeTasks {
		total += c
	}
	if total != 40 {
		t.Fatalf("per-node counts sum to %d", total)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Random),
		Tasks:    tasks(60, 1e11, 2),
		Seed:     42,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.EnergyJ != b.EnergyJ {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.Makespan, a.EnergyJ, b.Makespan, b.EnergyJ)
	}
	for name, c := range a.PerNodeTasks {
		if b.PerNodeTasks[name] != c {
			t.Fatalf("per-node counts diverged at %s", name)
		}
	}
	// Different seed must (generically) change RANDOM placement.
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for name, n := range a.PerNodeTasks {
		if c.PerNodeTasks[name] != n {
			same = false
		}
	}
	if same {
		t.Log("warning: different seed produced identical placement (possible but unlikely)")
	}
}

func TestTaskAccountingInvariants(t *testing.T) {
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Performance),
		Tasks:    tasks(50, 2e11, 1),
		Explore:  true,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Start < rec.Submit {
			t.Fatalf("task %d started before submission", rec.ID)
		}
		if rec.Finish <= rec.Start {
			t.Fatalf("task %d has non-positive exec time", rec.ID)
		}
		if rec.Finish > res.Makespan+1e-9 {
			t.Fatalf("task %d finished after makespan", rec.ID)
		}
		if rec.MeanPowerW <= 0 {
			t.Fatalf("task %d has no measured power", rec.ID)
		}
	}
}

func TestEnergyMatchesPowerBounds(t *testing.T) {
	p := smallPlatform()
	res, err := Run(Config{
		Platform: p,
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(30, 1e11, 2),
		Explore:  true,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	idleFloor, peakCeil := 0.0, 0.0
	for _, n := range p.Nodes {
		idleFloor += n.IdleW
		peakCeil += n.PeakW
	}
	if res.EnergyJ < idleFloor*res.Makespan {
		t.Fatalf("energy %v below idle floor %v", res.EnergyJ, idleFloor*res.Makespan)
	}
	if res.EnergyJ > peakCeil*res.Makespan {
		t.Fatalf("energy %v above peak ceiling %v", res.EnergyJ, peakCeil*res.Makespan)
	}
	// Per-node and per-cluster energies are consistent partitions.
	sumNode, sumCluster := 0.0, 0.0
	for _, e := range res.PerNodeEnergyJ {
		sumNode += e
	}
	for _, e := range res.PerClusterEnergy {
		sumCluster += e
	}
	if math.Abs(sumNode-res.EnergyJ) > 1e-6 || math.Abs(sumCluster-res.EnergyJ) > 1e-6 {
		t.Fatalf("energy partitions inconsistent: %v vs %v vs %v", sumNode, sumCluster, res.EnergyJ)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	// Overload heavily, then verify per-node concurrency from records.
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(200, 2e11, 10),
		Explore:  true,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := smallPlatform()
	type iv struct{ at, delta float64 }
	perNode := map[string][]iv{}
	for _, rec := range res.Records {
		perNode[rec.Server] = append(perNode[rec.Server],
			iv{rec.Start, 1}, iv{rec.Finish, -1})
	}
	for name, ivs := range perNode {
		idx := p.Find(name)
		cores := p.Nodes[idx].Cores
		// Sweep with finishes ordered before starts at equal times.
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].at != ivs[j].at {
				return ivs[i].at < ivs[j].at
			}
			return ivs[i].delta < ivs[j].delta
		})
		cur, peak := 0, 0
		for _, e := range ivs {
			cur += int(e.delta)
			if cur > peak {
				peak = cur
			}
		}
		if peak > cores {
			t.Fatalf("node %s ran %d concurrent tasks with %d cores", name, peak, cores)
		}
	}
}

func TestSlotsPerNodeLimit(t *testing.T) {
	// §IV-B: each server limited to one task.
	res, err := Run(Config{
		Platform:     smallPlatform(),
		Policy:       sched.New(sched.Power),
		Tasks:        tasks(20, 1e11, 5),
		SlotsPerNode: 1,
		Explore:      true,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify no overlapping executions per node.
	perNode := map[string][]TaskRecord{}
	for _, rec := range res.Records {
		perNode[rec.Server] = append(perNode[rec.Server], rec)
	}
	for name, recs := range perNode {
		for i := range recs {
			for j := i + 1; j < len(recs); j++ {
				a, b := recs[i], recs[j]
				if a.Start < b.Finish-1e-9 && b.Start < a.Finish-1e-9 {
					t.Fatalf("node %s overlapped tasks %d and %d", name, a.ID, b.ID)
				}
			}
		}
	}
}

func TestLearningPhaseTouchesEveryNode(t *testing.T) {
	// With exploration on, every node must execute at least one task
	// even under a policy that would otherwise concentrate load.
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(80, 1e11, 2),
		Explore:  true,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range smallPlatform().Nodes {
		if res.PerNodeTasks[n.Name] == 0 {
			t.Fatalf("node %s never explored", n.Name)
		}
	}
}

func TestStaticCalibrationSkipsLearning(t *testing.T) {
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(40, 1e11, 2),
		Static:   true,
		Explore:  true, // irrelevant: everything is known from the benchmark
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Static POWER placement concentrates on taurus (lower measured
	// watts at 1-core utilization) except under overload.
	taurus := res.PerClusterTasks["taurus"]
	sag := res.PerClusterTasks["sagittaire"]
	if taurus <= sag {
		t.Fatalf("static POWER should favor taurus: taurus=%d sagittaire=%d", taurus, sag)
	}
}

func TestCrashResubmitsTasks(t *testing.T) {
	res, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Performance),
		Tasks:    tasks(40, 5e11, 2),
		Explore:  true,
		Seed:     8,
		Crashes:  map[string]float64{"taurus-0": 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 40 {
		t.Fatalf("completed %d after crash, want 40", res.Completed)
	}
	if res.Crashed == 0 {
		t.Fatal("crash at t=30 under load should have killed work")
	}
	// The crashed node must execute nothing after the crash.
	for _, rec := range res.Records {
		if rec.Server == "taurus-0" && rec.Start >= 30 {
			t.Fatalf("crashed node ran task %d at %v", rec.ID, rec.Start)
		}
	}
	resub := 0
	for _, rec := range res.Records {
		resub += rec.Resubmits
	}
	if resub == 0 {
		t.Fatal("no task recorded a resubmission")
	}
}

func TestCrashUnknownNodeRejected(t *testing.T) {
	_, err := Run(Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(4, 1e11, 1),
		Crashes:  map[string]float64{"nope": 10},
	})
	if err == nil {
		t.Fatal("unknown crash node accepted")
	}
}

func TestSeriesSampling(t *testing.T) {
	res, err := Run(Config{
		Platform:    smallPlatform(),
		Policy:      sched.New(sched.Power),
		Tasks:       tasks(40, 2e11, 2),
		Explore:     true,
		Seed:        9,
		SampleEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 2 {
		t.Fatalf("series too short: %d", len(res.Series))
	}
	idle, peak := 0.0, 0.0
	for _, n := range smallPlatform().Nodes {
		idle += n.IdleW
		peak += n.PeakW
	}
	for _, pt := range res.Series {
		if pt.W < idle-1e-9 || pt.W > peak+1e-9 {
			t.Fatalf("sample %v W outside [%v,%v]", pt.W, idle, peak)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Platform: smallPlatform(), Policy: sched.New(sched.Power), Tasks: tasks(2, 1e9, 1)}
	if _, err := NewRunner(good); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Policy: sched.New(sched.Power), Tasks: tasks(2, 1e9, 1)},
		{Platform: smallPlatform(), Tasks: tasks(2, 1e9, 1)},
		{Platform: smallPlatform(), Policy: sched.New(sched.Power)},
	}
	for i, cfg := range bad {
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Malformed task.
	withBadTask := good
	withBadTask.Tasks = []workload.Task{{ID: 0, Ops: -1}}
	if _, err := NewRunner(withBadTask); err == nil {
		t.Error("malformed task accepted")
	}
}

func TestMeanWait(t *testing.T) {
	var r Result
	if r.MeanWait() != 0 {
		t.Fatal("empty MeanWait should be 0")
	}
	r.Records = []TaskRecord{
		{Submit: 0, Start: 2, Finish: 3},
		{Submit: 1, Start: 5, Finish: 9},
	}
	if got := r.MeanWait(); got != 3 {
		t.Fatalf("MeanWait = %v, want 3", got)
	}
	if r.Records[1].Exec() != 4 {
		t.Fatal("Exec wrong")
	}
}

func TestPolicyShapesPlacement(t *testing.T) {
	// The three §IV-A policies must produce distinct placements with
	// the expected winners on a taurus(lean)+sagittaire(hungry) mix.
	// Moderate load so policies can be choosy.
	mk := func(kind sched.Kind, seed int64) *Result {
		res, err := Run(Config{
			Platform: smallPlatform(),
			Policy:   sched.New(kind),
			Tasks:    tasks(60, 4e11, 0.4),
			Explore:  kind != sched.Random,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pw := mk(sched.Power, 1)
	pf := mk(sched.Performance, 1)

	// Both POWER and PERFORMANCE prefer taurus here (it is both
	// faster and leaner than sagittaire), so check against RANDOM.
	rd := mk(sched.Random, 1)
	if pw.PerClusterTasks["taurus"] <= rd.PerClusterTasks["taurus"] {
		t.Errorf("POWER should send more to taurus than RANDOM: %d vs %d",
			pw.PerClusterTasks["taurus"], rd.PerClusterTasks["taurus"])
	}
	if pw.EnergyJ >= rd.EnergyJ {
		t.Errorf("POWER energy %.0f should beat RANDOM %.0f", pw.EnergyJ, rd.EnergyJ)
	}
	if pf.Makespan > rd.Makespan {
		t.Errorf("PERFORMANCE makespan %.0f should not exceed RANDOM %.0f", pf.Makespan, rd.Makespan)
	}
}

func BenchmarkSimRun(b *testing.B) {
	cfg := Config{
		Platform: smallPlatform(),
		Policy:   sched.New(sched.Power),
		Tasks:    tasks(200, 1e11, 2),
		Explore:  true,
		Seed:     1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
