package sim

import (
	"reflect"
	"testing"

	"greensched/internal/power"
	"greensched/internal/powerd"
	"greensched/internal/sched"
)

// clusterTrace builds a time-keyed trace serving every node of the
// small platform a constant draw: taurus nodes taurusW, sagittaire
// nodes sagittaireW.
func clusterTrace(taurusW, sagittaireW float64) *powerd.TraceModel {
	m := powerd.NewTraceModel()
	for _, node := range []string{"taurus-0", "taurus-1"} {
		m.Add(node, 0, power.Watts(taurusW))
	}
	for _, node := range []string{"sagittaire-0", "sagittaire-1"} {
		m.Add(node, 0, power.Watts(sagittaireW))
	}
	return m
}

// TestExternalPowerModuleValidation: a nil source and a doubled stack
// both fail loudly at Init.
func TestExternalPowerModuleValidation(t *testing.T) {
	if _, err := Run(NewScenario(smallPlatform(), tasks(2, 1e11, 1),
		WithModules(&ExternalPowerModule{}))); err == nil {
		t.Error("nil source accepted")
	}
	src := clusterTrace(100, 100)
	if _, err := Run(NewScenario(smallPlatform(), tasks(2, 1e11, 1),
		WithModules(&ExternalPowerModule{Source: src}, &ExternalPowerModule{Source: src}))); err == nil {
		t.Error("two external power modules accepted")
	}
}

// TestExternalPowerModuleDeterministic: the replay is keyed on virtual
// time, so two runs of one config are identical — the property that
// makes a recorded estimator stream a reproducible experiment input.
func TestExternalPowerModuleDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(NewScenario(smallPlatform(), tasks(30, 1e11, 2),
			WithSeed(11),
			WithModules(&ExternalPowerModule{Source: clusterTrace(50, 250)})))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Makespan != b.Makespan || a.EnergyJ != b.EnergyJ {
		t.Fatalf("replayed runs diverged: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.PerNodeTasks, b.PerNodeTasks) {
		t.Fatalf("placements diverged: %v vs %v", a.PerNodeTasks, b.PerNodeTasks)
	}
}

// TestExternalPowerModuleSteersElections: the replayed watts flow into
// the green-perf ratio, so flipping which cluster the trace marks
// cheap flips where a GREENPERF policy places the work.
func TestExternalPowerModuleSteersElections(t *testing.T) {
	clusterTasks := func(m *powerd.TraceModel) (taurus, sagittaire int) {
		// Small tasks at a gentle rate: the cheap cluster never
		// saturates, so the queue bound can't force spill onto the
		// expensive one.
		res, err := Run(NewScenario(smallPlatform(), tasks(16, 1e9, 1),
			WithSeed(3),
			WithStatic(), // calibrated estimates; only the override varies
			WithPolicy(sched.New(sched.GreenPerf)),
			WithModules(&ExternalPowerModule{Source: m})))
		if err != nil {
			t.Fatal(err)
		}
		for node, n := range res.PerNodeTasks {
			if node == "taurus-0" || node == "taurus-1" {
				taurus += n
			} else {
				sagittaire += n
			}
		}
		return taurus, sagittaire
	}
	ta, sa := clusterTasks(clusterTrace(1, 1000))
	tb, sb := clusterTasks(clusterTrace(1000, 1))
	if ta <= sa {
		t.Errorf("cheap-taurus trace placed %d on taurus vs %d on sagittaire", ta, sa)
	}
	if sb <= tb {
		t.Errorf("cheap-sagittaire trace placed %d on sagittaire vs %d on taurus", sb, tb)
	}
}
