package sim

import (
	"bytes"
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/sched"
	"greensched/internal/workload"
)

// TestReplayCrossPolicy records an arrival schedule, round-trips it
// through the on-disk trace format, and re-runs it under a different
// policy: identical arrivals, different placements — the experiment
// design the CLI's `replay` command supports.
func TestReplayCrossPolicy(t *testing.T) {
	orig, err := workload.BurstThenRate{Total: 40, Burst: 8, Rate: 0.5, Ops: 3e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	replayed, err := workload.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(orig) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(replayed), len(orig))
	}
	for i := range orig {
		if replayed[i].Submit != orig[i].Submit || replayed[i].Ops != orig[i].Ops {
			t.Fatalf("task %d changed in round trip: %+v vs %+v", i, replayed[i], orig[i])
		}
	}

	platform := cluster.PaperPlatform()
	run := func(tasks []workload.Task, kind sched.Kind) *Result {
		res, err := Run(Config{
			Platform: platform,
			Policy:   sched.New(kind),
			Tasks:    tasks,
			Explore:  kind != sched.Random,
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Same trace, same policy, same seed → bit-identical outcome.
	a := run(orig, sched.Power)
	b := run(replayed, sched.Power)
	if a.Makespan != b.Makespan || a.EnergyJ != b.EnergyJ {
		t.Errorf("replay of identical trace diverged: %.2f/%.2f vs %.2f/%.2f",
			a.Makespan, a.EnergyJ, b.Makespan, b.EnergyJ)
	}

	// Same trace, different policy → different placement, same work.
	c := run(replayed, sched.Performance)
	if c.Completed != b.Completed {
		t.Errorf("policies completed different task counts: %d vs %d", c.Completed, b.Completed)
	}
	samePlacement := true
	for node, n := range b.PerNodeTasks {
		if c.PerNodeTasks[node] != n {
			samePlacement = false
			break
		}
	}
	if samePlacement {
		t.Error("POWER and PERFORMANCE produced identical placements on a heterogeneous platform")
	}
}
