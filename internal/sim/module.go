package sim

import (
	"fmt"

	"greensched/internal/carbon"
	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// This file is the simulator's composable extension surface. The
// paper's middleware is a plug-in architecture (DIET agents with
// pluggable schedulers); Module makes the simulator match it: every
// cross-cutting concern — carbon accounting, SLA admission and
// ledgers, preemption, power-management controllers, budget tracking,
// thermal monitoring — attaches to a run as one element of
// Config.Modules instead of occupying a dedicated Config field. A
// scenario stacks as many modules as it needs; the hooks of every
// module run in stack order at each extension point.
//
// The legacy one-slot hooks (Config.Carbon, .SLA, .Preemption,
// .OnControl, .OnFinish, .PolicyFunc) still work: NewRunner converts
// each one into the equivalent module and prepends it to the stack, so
// a legacy configuration and its explicit module spelling produce
// byte-identical Results (asserted in compat_test.go).

// Module observes and steers one simulation run. All hooks are called
// synchronously inside the event loop on virtual time. Implementations
// embed BaseModule to pick only the hooks they need; a Module instance
// belongs to one run (Init must fully reset any internal state).
type Module interface {
	// Init runs once inside NewRunner, after the platform state is
	// built and before any event executes — the place to validate
	// parameters and attach per-node state. Returning an error aborts
	// the run.
	Init(r *Runner) error

	// OnArrival observes (and may mutate) a task at its first
	// submission, before admission control and server election; with
	// an SLA module in the stack, the task's terms re-resolve after
	// the hooks run, so class/deadline/value mutations reach
	// admission, the ledger and the queue discipline. It is not called
	// again for retries, crash resubmissions or preemption restarts.
	OnArrival(now float64, t *workload.Task)

	// WrapPolicy builds the election policy for one arriving task from
	// the policy the previous module in the stack produced (the first
	// module receives Config.Policy). Returning base unchanged leaves
	// the election alone.
	WrapPolicy(now float64, t workload.Task, base sched.Policy) sched.Policy

	// OnFinish observes every completed task record as it happens.
	OnFinish(rec TaskRecord)

	// OnTick runs every Config.ControlEvery virtual seconds with the
	// Control surface over the platform (power management, candidacy,
	// preemption). Ticks stop once all tasks resolve.
	OnTick(now float64, ctl Control)

	// Finalize runs once after the event loop drains and the result's
	// energy and emissions totals are settled — the place to publish
	// summaries onto the Result.
	Finalize(res *Result)
}

// BaseModule is a no-op Module for embedding: implementations override
// only the hooks they care about.
type BaseModule struct{}

// Init implements Module.
func (BaseModule) Init(*Runner) error { return nil }

// OnArrival implements Module.
func (BaseModule) OnArrival(float64, *workload.Task) {}

// WrapPolicy implements Module.
func (BaseModule) WrapPolicy(_ float64, _ workload.Task, base sched.Policy) sched.Policy {
	return base
}

// OnFinish implements Module.
func (BaseModule) OnFinish(TaskRecord) {}

// OnTick implements Module.
func (BaseModule) OnTick(float64, Control) {}

// Finalize implements Module.
func (BaseModule) Finalize(*Result) {}

// HookModule adapts bare functions into a Module — the bridge the
// legacy Config hooks ride on, and the quickest way to drop an ad-hoc
// observer into a stack. Nil fields are no-ops.
type HookModule struct {
	InitFunc       func(r *Runner) error
	OnArrivalFunc  func(now float64, t *workload.Task)
	WrapPolicyFunc func(now float64, t workload.Task, base sched.Policy) sched.Policy
	OnFinishFunc   func(rec TaskRecord)
	OnTickFunc     func(now float64, ctl Control)
	FinalizeFunc   func(res *Result)
}

// Init implements Module.
func (h *HookModule) Init(r *Runner) error {
	if h.InitFunc == nil {
		return nil
	}
	return h.InitFunc(r)
}

// OnArrival implements Module.
func (h *HookModule) OnArrival(now float64, t *workload.Task) {
	if h.OnArrivalFunc != nil {
		h.OnArrivalFunc(now, t)
	}
}

// WrapPolicy implements Module.
func (h *HookModule) WrapPolicy(now float64, t workload.Task, base sched.Policy) sched.Policy {
	if h.WrapPolicyFunc == nil {
		return base
	}
	return h.WrapPolicyFunc(now, t, base)
}

// OnFinish implements Module.
func (h *HookModule) OnFinish(rec TaskRecord) {
	if h.OnFinishFunc != nil {
		h.OnFinishFunc(rec)
	}
}

// OnTick implements Module.
func (h *HookModule) OnTick(now float64, ctl Control) {
	if h.OnTickFunc != nil {
		h.OnTickFunc(now, ctl)
	}
}

// Finalize implements Module.
func (h *HookModule) Finalize(res *Result) {
	if h.FinalizeFunc != nil {
		h.FinalizeFunc(res)
	}
}

// CarbonModule attaches a grid carbon-intensity profile to the run:
// every node's exact energy accounting is integrated against its
// site's signal into grams of CO2 (Result.CO2Grams and the per-task
// attribution), and SEDs report their site's current intensity and
// renewable fraction in their estimation vectors so carbon-aware
// policies can rank on them. Candidacy windows that *defer* work into
// clean periods are a controller concern — stack a
// consolidation.Module carrying a CarbonController on top.
//
// (It lives in package sim rather than package carbon because sim
// already depends on carbon for the legacy Config.Carbon adapter; a
// carbon.Module would close an import cycle.)
type CarbonModule struct {
	BaseModule
	Profile *carbon.Profile
}

// Init implements Module: it attaches the site signal and a fresh
// emissions integrator to every node.
func (m *CarbonModule) Init(r *Runner) error {
	if m.Profile == nil {
		return fmt.Errorf("sim: carbon module needs a profile")
	}
	for _, sed := range r.seds {
		if sed.site != nil {
			return fmt.Errorf("sim: node %s already carries a carbon profile (two carbon modules in one stack?)", sed.node.Spec.Name)
		}
		site := m.Profile.Site(sed.node.Spec.Cluster)
		co2, err := carbon.NewIntegrator(site, 0)
		if err != nil {
			return fmt.Errorf("sim: node %s: %w", sed.node.Spec.Name, err)
		}
		sed.site = &site
		sed.co2 = co2
		sed.node.OnSettle = func(_, to float64, w power.Watts) {
			co2.Advance(to, w)
		}
	}
	return nil
}

// SLAModule turns on service-level awareness: task classes resolve to
// deadlines/values/penalty curves through the catalog, admission
// control screens first submissions, SED queues drain under the
// configured discipline instead of FIFO, and the Result carries the
// revenue/penalty ledger plus per-task slack.
//
// With WrapDeadline set the module also owns the election policy of
// deadline-carrying tasks: it wraps the stack's policy in
// sched.DeadlineAware for the task's own resolved deadline, which is
// the per-task wiring SLA experiments previously hand-rolled through
// Config.PolicyFunc.
type SLAModule struct {
	BaseModule
	Config *sla.Config
	// WrapDeadline wraps elections of deadline-carrying tasks with
	// sched.DeadlineAware over the stack's base policy.
	WrapDeadline bool

	r *Runner
}

// Init implements Module: it validates the config, resolves every
// task's terms against the catalog and installs the ledger and queue
// discipline.
func (m *SLAModule) Init(r *Runner) error {
	if m.Config == nil {
		return fmt.Errorf("sim: SLA module needs a config")
	}
	if err := m.Config.Validate(); err != nil {
		return err
	}
	if r.sla != nil {
		return fmt.Errorf("sim: two SLA modules in one stack")
	}
	r.sla = m.Config
	r.catalog = m.Config.EffectiveCatalog()
	r.terms = make(map[int]sla.Terms, len(r.cfg.Tasks))
	for _, t := range r.cfg.Tasks {
		r.terms[t.ID] = r.catalog.Resolve(t)
	}
	r.ledger = sla.NewLedger()
	r.order = m.Config.Order
	m.r = r
	return nil
}

// WrapPolicy implements Module: deadline-carrying tasks elect through
// the hard feasibility screen; deferrable work keeps the base order.
func (m *SLAModule) WrapPolicy(now float64, t workload.Task, base sched.Policy) sched.Policy {
	if !m.WrapDeadline {
		return base
	}
	view := m.r.taskView(t)
	if view.Deadline <= 0 {
		return base
	}
	return sched.DeadlineAware{Base: base, Ops: t.Ops, Now: now, Deadline: view.Deadline}
}

// Finalize implements Module: it publishes the ledger summary.
func (m *SLAModule) Finalize(res *Result) {
	s := m.r.ledger.Summarize(float64(res.EnergyJ), res.CO2Grams)
	res.SLA = &s
}

// PreemptModule relaxes the run-to-completion invariant: a
// deadline-urgent arrival may checkpoint and displace a running task
// when the elected SED's own slack math says waiting would breach the
// deadline but an immediate start would not, and controllers may issue
// Control.Preempt. See Config.Preemption for the full semantics.
type PreemptModule struct {
	BaseModule
	Preemption *sla.Preemption
}

// Init implements Module.
func (m *PreemptModule) Init(r *Runner) error {
	if m.Preemption == nil {
		return fmt.Errorf("sim: preempt module needs preemption semantics")
	}
	if err := m.Preemption.Validate(); err != nil {
		return err
	}
	if r.pre != nil {
		return fmt.Errorf("sim: two preemption modules in one stack")
	}
	r.pre = m.Preemption
	return nil
}

// modules assembles the run's effective module stack: the legacy
// one-slot Config hooks first (each converted into its equivalent
// module, in a fixed documented order), then Config.Modules as given.
func (c *Config) modules() []Module {
	var mods []Module
	if c.Carbon != nil {
		mods = append(mods, &CarbonModule{Profile: c.Carbon})
	}
	if c.SLA != nil {
		mods = append(mods, &SLAModule{Config: c.SLA})
	}
	if c.Preemption != nil {
		mods = append(mods, &PreemptModule{Preemption: c.Preemption})
	}
	if fn := c.PolicyFunc; fn != nil {
		mods = append(mods, &HookModule{
			WrapPolicyFunc: func(now float64, t workload.Task, _ sched.Policy) sched.Policy {
				return fn(now, t)
			},
		})
	}
	if c.OnFinish != nil {
		mods = append(mods, &HookModule{OnFinishFunc: c.OnFinish})
	}
	if c.OnControl != nil {
		mods = append(mods, &HookModule{OnTickFunc: c.OnControl})
	}
	return append(mods, c.Modules...)
}
