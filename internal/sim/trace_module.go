package sim

import (
	"fmt"
	"io"

	"greensched/internal/obs"
)

// LifecycleObserver is the optional Module surface behind lifecycle
// tracing: a module that also implements it receives every task's
// structured lifecycle transitions — the exact obs.Event schema the
// live middleware's ObsInterceptor emits, on virtual time instead of
// the master clock:
//
//	submit → admit|reject → elect → solve → complete|fail
//
// with defer emitted when an unplaceable task (every candidacy window
// shut, all nodes off) is finally placed after waiting. Events fire
// synchronously inside the event loop, so a deterministic run yields a
// byte-identical stream. The Event's Src field is left empty for the
// observer to stamp.
type LifecycleObserver interface {
	OnLifecycle(ev obs.Event)
}

// TraceModule writes the run's lifecycle events as JSONL — the
// simulator spelling of attaching an obs.Tracer to the live stack, and
// the reason a sim study and a TCP deployment produce directly
// comparable traces.
type TraceModule struct {
	BaseModule

	// W receives the JSONL stream. Exactly one of W and Tracer must be
	// set.
	W io.Writer
	// Tracer, when set, receives the events instead — the way to merge
	// a sim trace into a stream another component already writes.
	Tracer *obs.Tracer
	// Src stamps the events' source field ("" = "sim").
	Src string

	tr  *obs.Tracer
	src string
}

// Init implements Module.
func (m *TraceModule) Init(*Runner) error {
	switch {
	case m.Tracer != nil && m.W != nil:
		return fmt.Errorf("sim: trace module wants W or Tracer, not both")
	case m.Tracer != nil:
		m.tr = m.Tracer
	case m.W != nil:
		m.tr = obs.NewTracer(m.W)
	default:
		return fmt.Errorf("sim: trace module needs a writer or a tracer")
	}
	m.src = m.Src
	if m.src == "" {
		m.src = "sim"
	}
	return nil
}

// OnLifecycle implements LifecycleObserver.
func (m *TraceModule) OnLifecycle(ev obs.Event) {
	ev.Src = m.src
	m.tr.Emit(ev)
}
