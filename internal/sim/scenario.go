package sim

import (
	"greensched/internal/cluster"
	"greensched/internal/sched"
	"greensched/internal/workload"
)

// This file is the scenario construction surface: NewScenario builds a
// Config from a platform, a workload and functional options, with the
// module stack as the one extension mechanism. It is sugar — the
// returned Config runs through the ordinary Run/NewRunner path — but
// it keeps scenario definitions declarative:
//
//	cfg := sim.NewScenario(platform, tasks,
//		sim.WithPolicy(sched.New(sched.Carbon)),
//		sim.WithSeed(7),
//		sim.WithTick(300),
//		sim.WithModules(
//			&sim.CarbonModule{Profile: profile},
//			&sim.SLAModule{Config: slaCfg, WrapDeadline: true},
//			&consolidation.Module{Controller: ctl},
//		),
//	)
//	res, err := sim.Run(cfg)

// Option mutates a scenario Config under construction.
type Option func(*Config)

// NewScenario returns a Config for the platform and workload with all
// options applied. The policy defaults to GreenPerf (the paper's
// headline metric) when no WithPolicy option overrides it.
func NewScenario(platform *cluster.Platform, tasks []workload.Task, opts ...Option) Config {
	cfg := Config{
		Platform: platform,
		Tasks:    tasks,
		Policy:   sched.New(sched.GreenPerf),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithPolicy sets the run's base election policy (the policy the first
// module's WrapPolicy receives).
func WithPolicy(p sched.Policy) Option { return func(c *Config) { c.Policy = p } }

// WithSeed sets the seed driving every stochastic element.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithModules appends modules to the scenario's stack, in order.
func WithModules(mods ...Module) Option {
	return func(c *Config) { c.Modules = append(c.Modules, mods...) }
}

// WithExplore enables the learning phase (dynamic estimation).
func WithExplore() Option { return func(c *Config) { c.Explore = true } }

// WithStatic seeds every estimator from a noiseless initial benchmark
// instead of learning dynamically.
func WithStatic() Option { return func(c *Config) { c.Static = true } }

// WithSlotsPerNode caps concurrent tasks per node below its core count.
func WithSlotsPerNode(n int) Option { return func(c *Config) { c.SlotsPerNode = n } }

// WithTick sets the control cadence: module OnTick hooks run every
// `every` virtual seconds.
func WithTick(every float64) Option { return func(c *Config) { c.ControlEvery = every } }

// WithRetryEvery sets the client back-off between election attempts
// for a request no server can accept.
func WithRetryEvery(every float64) Option { return func(c *Config) { c.RetryEvery = every } }

// WithQueueFactor bounds per-SED backlog (see sched.Selector).
func WithQueueFactor(f float64) Option { return func(c *Config) { c.QueueFactor = f } }

// WithContention sets the co-runner interference slowdown factor.
func WithContention(c float64) Option { return func(cfg *Config) { cfg.Contention = c } }

// WithExecJitter adds a relative uniform ±jitter to task execution
// times.
func WithExecJitter(j float64) Option { return func(c *Config) { c.ExecJitter = j } }

// WithSampleEvery records a platform power sample every so many
// seconds.
func WithSampleEvery(every float64) Option { return func(c *Config) { c.SampleEvery = every } }

// WithLegacyKernel runs the scenario on the seed scheduling kernel
// (per-task arrival events, sort-based wait estimates, per-election
// vector allocation) instead of the event-heap kernel. Results are
// byte-identical either way; the option exists for the cross-engine
// equivalence tests.
func WithLegacyKernel() Option { return func(c *Config) { c.LegacyKernel = true } }
