package sim

import (
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/provision"
	"greensched/internal/sched"
)

// paperTimeline loads the §IV-C event schedule (times in seconds):
// start at regular cost, scheduled cost drops at t+60 and t+120 min,
// an unexpected heat event just before t+160 min, recovery before
// t+240 min.
func paperTimeline() *provision.Store {
	store := provision.NewStore()
	store.Put(provision.Record{Value: 0, Cost: 1.0, Temperature: 23})
	store.Put(provision.Record{Value: 3600, Cost: 0.8, Temperature: 23})                    // Event 1 (scheduled)
	store.Put(provision.Record{Value: 7200, Cost: 0.5, Temperature: 23})                    // Event 2 (scheduled)
	store.Put(provision.Record{Value: 9550, Cost: 0.5, Temperature: 27, Unexpected: true})  // Event 3
	store.Put(provision.Record{Value: 14350, Cost: 0.5, Temperature: 22, Unexpected: true}) // Event 4
	return store
}

func adaptiveConfig(seed int64) AdaptiveConfig {
	planner := provision.NewPlanner(12, 4)
	planner.MinNodes = 2
	return AdaptiveConfig{
		Platform: cluster.PaperPlatform(),
		Planner:  planner,
		Store:    paperTimeline(),
		Policy:   sched.New(sched.GreenPerf),
		TaskOps:  1.8e12, // ≈200 s on a taurus core
		Horizon:  260 * 60,
		Seed:     seed,
	}
}

func TestAdaptiveValidation(t *testing.T) {
	cfg := adaptiveConfig(1)
	cfg.Platform = nil
	if _, err := RunAdaptive(cfg); err == nil {
		t.Fatal("missing platform accepted")
	}
	cfg = adaptiveConfig(1)
	cfg.TaskOps = 0
	if _, err := RunAdaptive(cfg); err == nil {
		t.Fatal("zero ops accepted")
	}
	cfg = adaptiveConfig(1)
	cfg.Horizon = -1
	if _, err := RunAdaptive(cfg); err == nil {
		t.Fatal("negative horizon accepted")
	}
	cfg = adaptiveConfig(1)
	cfg.Planner.StepUp = 0
	if _, err := RunAdaptive(cfg); err == nil {
		t.Fatal("invalid planner accepted")
	}
}

func TestAdaptiveReproducesFigure9Shape(t *testing.T) {
	res, err := RunAdaptive(adaptiveConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 26 {
		t.Fatalf("samples = %d, want 26 (every 10 min over 260)", len(res.Samples))
	}
	pool := func(minute float64) int {
		for _, s := range res.Samples {
			if s.T == minute*60 {
				return s.Candidates
			}
		}
		t.Fatalf("no sample at minute %v", minute)
		return -1
	}
	// Start: regular cost → 4 candidates.
	if got := pool(10); got != 4 {
		t.Errorf("pool at t+10 = %d, want 4", got)
	}
	// Event 1: progressive 4→6→8 reaching 8 at t+60.
	if got := pool(50); got != 6 {
		t.Errorf("pool at t+50 = %d, want 6 (progressive start)", got)
	}
	if got := pool(60); got != 8 {
		t.Errorf("pool at t+60 = %d, want 8", got)
	}
	// Event 2: all 12 nodes in use by t+120 and held through t+160.
	if got := pool(120); got != 12 {
		t.Errorf("pool at t+120 = %d, want 12", got)
	}
	if got := pool(150); got != 12 {
		t.Errorf("pool at t+150 = %d, want 12", got)
	}
	// Event 3: heat detected at t+160 → down to 2 in 3 steps.
	if got := pool(160); got != 8 {
		t.Errorf("pool at t+160 = %d, want 8 (first step down)", got)
	}
	if got := pool(180); got != 2 {
		t.Errorf("pool at t+180 = %d, want 2", got)
	}
	if got := pool(230); got != 2 {
		t.Errorf("pool at t+230 = %d, want 2 (held during heat)", got)
	}
	// Event 4: recovery ramp toward 12.
	if got := pool(250); got <= 2 {
		t.Errorf("pool at t+250 = %d, want recovery above 2", got)
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Candidates <= pool(230) {
		t.Error("pool must be re-ramping at the end of the run")
	}
}

func TestAdaptivePowerTracksPool(t *testing.T) {
	res, err := RunAdaptive(adaptiveConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	byMinute := map[float64]AdaptiveSample{}
	for _, s := range res.Samples {
		byMinute[s.T/60] = s
	}
	// Power while 12 nodes run (t+150) must exceed power with 4
	// candidates (t+30) and power during the heat trough (t+230).
	if byMinute[150].AvgW <= byMinute[30].AvgW {
		t.Errorf("full-platform draw %.0f W should exceed 4-node draw %.0f W",
			byMinute[150].AvgW, byMinute[30].AvgW)
	}
	if byMinute[150].AvgW <= byMinute[230].AvgW {
		t.Errorf("full-platform draw %.0f W should exceed heat-trough draw %.0f W",
			byMinute[150].AvgW, byMinute[230].AvgW)
	}
	// The energy drop lags the candidate drop: at the first step down
	// (t+160) draw is still near the full-platform level.
	if byMinute[170].AvgW >= byMinute[150].AvgW {
		// By t+170 the drop must have started.
		t.Errorf("draw at t+170 (%.0f W) should be below full-platform (%.0f W)",
			byMinute[170].AvgW, byMinute[150].AvgW)
	}
	if res.DrainLagS <= 0 {
		t.Error("drain lag should be positive (tasks complete before shutdown)")
	}
}

func TestAdaptiveProgressiveBoots(t *testing.T) {
	res, err := RunAdaptive(adaptiveConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// 4→8→12→(drop)→re-ramp: boots happen in increments of ≤ StepUp
	// per planner tick, so the total count is bounded but non-zero.
	if res.Boots == 0 {
		t.Fatal("no boots recorded")
	}
	// Pool never exceeds the platform and never goes below MinNodes
	// after the start.
	for _, d := range res.Decisions {
		if d.Pool > 12 || d.Pool < 2 {
			t.Fatalf("pool %d outside [2,12] at %v", d.Pool, d.At)
		}
		if d.Changed > 2 || d.Changed < -4 {
			t.Fatalf("pool step %d outside [-4,+2] at %v", d.Changed, d.At)
		}
	}
}

func TestAdaptiveClientTracksCapacity(t *testing.T) {
	res, err := RunAdaptive(adaptiveConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no tasks completed")
	}
	// While the full platform is up (t+120..160), the client should
	// keep it essentially saturated: running ≈ capacity (104 slots).
	for _, s := range res.Samples {
		m := s.T / 60
		if m >= 130 && m <= 160 && s.Running < 90 {
			t.Errorf("at t+%v only %d tasks running; closed loop should saturate ~104 slots", m, s.Running)
		}
	}
	if res.EnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestAdaptiveDeterminism(t *testing.T) {
	a, err := RunAdaptive(adaptiveConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdaptive(adaptiveConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.Completed != b.Completed || len(a.Samples) != len(b.Samples) {
		t.Fatal("same seed diverged")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d diverged", i)
		}
	}
}

func BenchmarkAdaptiveRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunAdaptive(adaptiveConfig(1)); err != nil {
			b.Fatal(err)
		}
	}
}
