package sim

import (
	"math/rand"
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/power"
	"greensched/internal/simtime"
	"greensched/internal/workload"
)

// This file pins the wait-estimate refactor: the event-heap kernel's
// min-heap + cached-first-free estimate must return bit-identical
// floats to the seed kernel's sort-per-queued-task loop on arbitrary
// SED states, and the hot path must not allocate — the seed version
// cost O(q·s·log s) comparisons and one fresh slice per probe, which
// dominated the 10k-task benchmark.

// waitSED builds a SED with nrun running tasks (finish times drawn
// from rng) and nq queued tasks, at virtual time now.
func waitSED(t *testing.T, eng *simtime.Engine, rng *rand.Rand, slots, nrun, nq int, now float64) *sedState {
	t.Helper()
	spec := smallPlatform().Nodes[0]
	sed := &sedState{
		node:    cluster.NewNode(spec, 0, power.NewWattmeter(0, 1)),
		est:     power.NewEstimator(8),
		slots:   slots,
		running: make(map[int]*runningTask),
	}
	for i := 0; i < nrun; i++ {
		if err := sed.node.StartTask(now); err != nil {
			t.Fatal(err)
		}
		rt := &runningTask{start: now}
		rt.finish = eng.At(simtime.Time(now+1+rng.Float64()*500), "finish", func(simtime.Time) {})
		sed.running[i] = rt
		sed.bumpWait()
	}
	for i := 0; i < nq; i++ {
		sed.pushQueue(pendingTask{task: workload.Task{ID: 1000 + i, Ops: (1 + rng.Float64()*9) * 1e11}})
	}
	return sed
}

// TestWaitEstimateMatchesLegacy: the heap/cached estimate equals the
// seed sort-based estimate bit-for-bit across randomized states,
// repeated probes (cache hits) and interleaved mutations.
func TestWaitEstimateMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		eng := simtime.NewEngine()
		now := rng.Float64() * 100
		slots := 1 + rng.Intn(8)
		// nrun < slots with a backlog exercises the now-padded branch
		// (a booting/off node's leftover queue); nrun == slots the
		// cached branch.
		nrun := rng.Intn(slots + 1)
		nq := rng.Intn(12)
		sed := waitSED(t, eng, rng, slots, nrun, nq, now)
		for probe := 0; probe < 3; probe++ {
			got := sed.waitEstimate(now)
			want := sed.legacyWaitEstimate(now)
			if got != want {
				t.Fatalf("trial %d probe %d: waitEstimate %v != legacy %v (slots=%d run=%d q=%d)",
					trial, probe, got, want, slots, nrun, nq)
			}
			now += rng.Float64() * 10 // later probe, same state: cache path
		}
		// Mutate the queue and probe again: the version bump must
		// invalidate the cache.
		sed.pushQueue(pendingTask{task: workload.Task{ID: 9999, Ops: 3e11}})
		if got, want := sed.waitEstimate(now), sed.legacyWaitEstimate(now); got != want {
			t.Fatalf("trial %d after push: %v != %v", trial, got, want)
		}
	}
}

// TestWaitEstimateZeroAlloc: repeated probes — including cache misses
// after mutations — allocate nothing once the scratch heap has grown.
func TestWaitEstimateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng := simtime.NewEngine()
	sed := waitSED(t, eng, rng, 4, 4, 10, 0)
	sed.waitEstimate(0) // warm the scratch buffer
	now := 0.0
	allocs := testing.AllocsPerRun(100, func() {
		now += 0.25
		sed.waitEstimate(now) // cache hit
		sed.bumpWait()
		sed.waitEstimate(now) // full heap recompute
	})
	if allocs != 0 {
		t.Fatalf("waitEstimate allocated %.1f times per probe pair, want 0", allocs)
	}
}
