package core

import (
	"math"
	"testing"
)

func TestCarbonPerfWeightsIntensity(t *testing.T) {
	// Same watts and flops, different grids: the cleaner site wins.
	clean := Server{Name: "clean", Flops: 5e9, PowerW: 200, CarbonIntensity: 50, Active: true}
	dirty := Server{Name: "dirty", Flops: 5e9, PowerW: 200, CarbonIntensity: 500, Active: true}
	if clean.CarbonPerf() >= dirty.CarbonPerf() {
		t.Errorf("clean %v must beat dirty %v", clean.CarbonPerf(), dirty.CarbonPerf())
	}
	ranked := Rank([]Server{dirty, clean}, ByCarbonPerf())
	if ranked[0].Name != "clean" {
		t.Errorf("ByCarbonPerf ranked %s first", ranked[0].Name)
	}
}

func TestCarbonPerfTradesWattsAgainstGrid(t *testing.T) {
	// A hungrier server on a 10× cleaner grid emits less per flop.
	hungryClean := Server{Name: "hc", Flops: 5e9, PowerW: 300, CarbonIntensity: 50, Active: true}
	leanDirty := Server{Name: "ld", Flops: 5e9, PowerW: 200, CarbonIntensity: 500, Active: true}
	if leanDirty.GreenPerf() >= hungryClean.GreenPerf() {
		t.Fatal("precondition: leanDirty must win on GreenPerf")
	}
	if hungryClean.CarbonPerf() >= leanDirty.CarbonPerf() {
		t.Error("CarbonPerf must prefer the cleaner grid despite higher watts")
	}
}

func TestCarbonPerfUnknownIntensityDegradesToGreenPerf(t *testing.T) {
	a := Server{Name: "a", Flops: 5e9, PowerW: 100}
	b := Server{Name: "b", Flops: 5e9, PowerW: 300}
	// Both unknown: ordering equals GreenPerf's.
	ranked := Rank([]Server{b, a}, ByCarbonPerf())
	if ranked[0].Name != "a" {
		t.Errorf("unknown intensities must fall back to GreenPerf; got %s first", ranked[0].Name)
	}
	if got, want := a.CarbonPerf(), a.GreenPerf(); got != want {
		t.Errorf("neutral intensity CarbonPerf %v != GreenPerf %v", got, want)
	}
}

func TestByCarbonPerfTieBreaks(t *testing.T) {
	// Equal grams/flop and watts/flop: faster node first, then name.
	slow := Server{Name: "slow", Flops: 2e9, PowerW: 100, CarbonIntensity: 100}
	fast := Server{Name: "fast", Flops: 4e9, PowerW: 200, CarbonIntensity: 100}
	ranked := Rank([]Server{slow, fast}, ByCarbonPerf())
	if ranked[0].Name != "fast" {
		t.Errorf("performance must break carbon ties, got %s first", ranked[0].Name)
	}
}

func TestGreenWeightsValidate(t *testing.T) {
	if err := DefaultGreenWeights.Validate(); err != nil {
		t.Fatal(err)
	}
	if (GreenWeights{Perf: -1}).Validate() == nil {
		t.Error("negative weight must be rejected")
	}
	if (GreenWeights{}).Validate() == nil {
		t.Error("all-zero weights must be rejected")
	}
}

func TestGreenWeightsAxes(t *testing.T) {
	fast := Server{Name: "fast", Flops: 10e9, PowerW: 400, CarbonIntensity: 400, Active: true}
	lean := Server{Name: "lean", Flops: 4e9, PowerW: 60, CarbonIntensity: 400, Active: true}
	clean := Server{Name: "clean", Flops: 4e9, PowerW: 100, CarbonIntensity: 20, Active: true}
	servers := []Server{fast, lean, clean}

	if got := Rank(servers, ByGreenWeights(GreenWeights{Perf: 1}))[0].Name; got != "fast" {
		t.Errorf("pure perf weighting chose %s", got)
	}
	if got := Rank(servers, ByGreenWeights(GreenWeights{Watts: 1}))[0].Name; got != "lean" {
		t.Errorf("pure watts weighting chose %s", got)
	}
	if got := Rank(servers, ByGreenWeights(GreenWeights{Carbon: 1}))[0].Name; got != "clean" {
		t.Errorf("pure carbon weighting chose %s", got)
	}
}

func TestGreenWeightsScoreIsScaleFree(t *testing.T) {
	w := GreenWeights{Perf: 0.5, Watts: 1, Carbon: 2}
	a := Server{Name: "a", Flops: 5e9, PowerW: 150, CarbonIntensity: 300}
	b := Server{Name: "b", Flops: 8e9, PowerW: 220, CarbonIntensity: 90}
	delta := w.Score(a) - w.Score(b)
	// Rescale the power unit by 1000: the score gap must be unchanged.
	a2, b2 := a, b
	a2.PowerW *= 1000
	b2.PowerW *= 1000
	delta2 := w.Score(a2) - w.Score(b2)
	if math.Abs(delta-delta2) > 1e-9 {
		t.Errorf("score gap changed under unit rescale: %v vs %v", delta, delta2)
	}
}
