package core_test

import (
	"fmt"

	"greensched/internal/core"
)

// ExampleRank reproduces the Figure 1 ordering: servers sorted by the
// GreenPerf power/performance ratio, most efficient first.
func ExampleRank() {
	servers := []core.Server{
		{Name: "S2", Flops: 6e9, PowerW: 150, Active: true},
		{Name: "S0", Flops: 10e9, PowerW: 100, Active: true},
		{Name: "S1", Flops: 8e9, PowerW: 120, Active: true},
	}
	for _, s := range core.Rank(servers, core.ByGreenPerf()) {
		fmt.Printf("%s %.0f nW/flops\n", s.Name, s.GreenPerf()*1e9)
	}
	// Output:
	// S0 10 nW/flops
	// S1 15 nW/flops
	// S2 25 nW/flops
}

// ExampleSelectCandidates shows Algorithm 1: the GreenPerf-sorted
// prefix whose accumulated power covers the provider's preference.
func ExampleSelectCandidates() {
	sorted := []core.Server{
		{Name: "green", Flops: 10e9, PowerW: 100, Active: true},
		{Name: "mid", Flops: 8e9, PowerW: 150, Active: true},
		{Name: "hot", Flops: 5e9, PowerW: 250, Active: true},
	}
	// P_total = 500 W; preference 0.5 → P_required = 250 W.
	for _, s := range core.SelectCandidates(sorted, 0.5) {
		fmt.Println(s.Name)
	}
	// Output:
	// green
	// mid
}

// ExampleServer_Score evaluates Eq. 6 at the Eq. 7 limits.
func ExampleServer_Score() {
	fast := core.Server{Name: "fast", Flops: 10e9, PowerW: 400, Active: true}
	lean := core.Server{Name: "lean", Flops: 2e9, PowerW: 60, Active: true}
	ops := 1e12
	for _, p := range []core.UserPref{core.PrefMaxPerformance, core.PrefMaxEfficiency} {
		winner := "lean"
		if fast.Score(ops, p) < lean.Score(ops, p) {
			winner = "fast"
		}
		fmt.Printf("P=%+.0f -> %s\n", float64(p), winner)
	}
	// Output:
	// P=-1 -> fast
	// P=+1 -> lean
}

// ExampleProviderPref evaluates Eq. 1 for a cheap-electricity,
// busy-platform period.
func ExampleProviderPref() {
	pp := core.ProviderPref{Alpha: 0.5, Beta: 0.5}
	fmt.Printf("%.2f\n", pp.Eval(0.8 /*utilization*/, 0.2 /*cost*/))
	// Output:
	// 0.80
}
