package core

// This file holds the carbon-aware extensions of the paper's ranking
// model. GreenPerf divides watts by performance; these criteria divide
// *emissions rate* by performance instead, so a multi-site platform
// can prefer a slightly hungrier server on a much cleaner grid. The
// blended GreenWeights score lets a provider weight performance,
// watts and carbon against each other, extending the Eq. 1 provider
// preference from one knob (electricity cost) to the full
// performance/watts/carbon triangle.

import (
	"fmt"
	"math"
)

// CarbonPerf returns the intensity-weighted ranking ratio
//
//	(Power Consumption × Grid Carbon Intensity) / Performance
//
// in (W·gCO2/kWh) per flop/s — proportional to grams emitted per flop;
// lower is better. With equal intensities everywhere it orders
// identically to GreenPerf; with per-site intensities it trades watts
// against grid cleanliness.
func (s Server) CarbonPerf() float64 {
	return s.PowerW * s.effectiveIntensity() / s.Flops
}

// effectiveIntensity substitutes a neutral 1 g/kWh for servers whose
// site intensity is unknown, so CarbonPerf degrades to GreenPerf
// instead of collapsing to zero. Callers comparing across sites should
// populate CarbonIntensity for every server.
func (s Server) effectiveIntensity() float64 {
	if s.CarbonIntensity <= 0 {
		return 1
	}
	return s.CarbonIntensity
}

// GreenWeights is the provider's appetite for each axis of the
// performance / watts / carbon triangle. The blended score is the
// log-linear mix
//
//	Sc = wPerf·ln(1/fs) + wWatts·ln(cs/fs) + wCarbon·ln(cs·I/fs)
//
// (lower is better), i.e. a weighted geometric mean of the three
// ranking ratios. Multiplying any metric by a constant shifts every
// server's score equally, so the ordering is unit-free and the weights
// only express relative priorities.
type GreenWeights struct {
	Perf   float64 // weight of raw performance (1/fs)
	Watts  float64 // weight of GreenPerf (cs/fs)
	Carbon float64 // weight of CarbonPerf (cs·I/fs)
}

// DefaultGreenWeights balances the three axes equally.
var DefaultGreenWeights = GreenWeights{Perf: 1, Watts: 1, Carbon: 1}

// Validate rejects meaningless weightings.
func (w GreenWeights) Validate() error {
	if w.Perf < 0 || w.Watts < 0 || w.Carbon < 0 {
		return fmt.Errorf("core: negative green weights %+v", w)
	}
	if w.Perf+w.Watts+w.Carbon == 0 {
		return fmt.Errorf("core: all green weights zero")
	}
	return nil
}

// Score returns the blended log-linear score for a server; lower ranks
// first.
func (w GreenWeights) Score(s Server) float64 {
	return w.Perf*math.Log(1/s.Flops) +
		w.Watts*math.Log(s.GreenPerf()) +
		w.Carbon*math.Log(s.CarbonPerf())
}

type byCarbonPerf struct{}

func (byCarbonPerf) Name() string { return "CARBONPERF" }
func (byCarbonPerf) Less(a, b Server) bool {
	ca, cb := a.CarbonPerf(), b.CarbonPerf()
	if ca != cb {
		return ca < cb
	}
	if ga, gb := a.GreenPerf(), b.GreenPerf(); ga != gb {
		return ga < gb
	}
	if a.Flops != b.Flops {
		return a.Flops > b.Flops
	}
	return a.Name < b.Name
}

// ByCarbonPerf ranks by grams-per-flop, ascending — the carbon
// analogue of ByGreenPerf. Ties break by GreenPerf, then performance
// descending (§III-A's secondary parameter), then name.
func ByCarbonPerf() Criterion { return byCarbonPerf{} }

type byGreenWeights struct{ w GreenWeights }

func (c byGreenWeights) Name() string {
	return fmt.Sprintf("GREENWEIGHTS(p=%g,w=%g,c=%g)", c.w.Perf, c.w.Watts, c.w.Carbon)
}
func (c byGreenWeights) Less(a, b Server) bool {
	sa, sb := c.w.Score(a), c.w.Score(b)
	if sa != sb {
		return sa < sb
	}
	return a.Name < b.Name
}

// ByGreenWeights ranks by the blended performance/watts/carbon score.
func ByGreenWeights(w GreenWeights) Criterion { return byGreenWeights{w: w} }
