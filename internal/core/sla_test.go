package core

import (
	"testing"
)

func TestDeadlineSlackAndValuePerJoule(t *testing.T) {
	s := Server{Name: "n", Flops: 1e9, PowerW: 200, Active: true, WaitSec: 100}
	// Completion: 100 wait + 100 exec = 200; slack = 500 − 0 − 200.
	if got := s.DeadlineSlack(1e11, 0, 500); got != 300 {
		t.Errorf("slack = %v, want 300", got)
	}
	// Energy: 200 W × 100 s = 20 kJ; $2 → 1e-4 $/J.
	if got := s.ValuePerJoule(1e11, 2); got != 2.0/20000 {
		t.Errorf("value/J = %v", got)
	}
	// Boot investment counts for inactive servers.
	cold := Server{Name: "c", Flops: 1e9, PowerW: 200, BootSec: 50, BootPowerW: 100}
	if cold.DeadlineSlack(1e11, 0, 500) != 500-150 {
		t.Errorf("cold slack = %v", cold.DeadlineSlack(1e11, 0, 500))
	}
	if cold.ValuePerJoule(1e11, 2) >= s.ValuePerJoule(1e11, 2) {
		t.Error("boot energy must reduce value efficiency")
	}
}

func TestByDeadlineSlackFeasibleFirst(t *testing.T) {
	fast := Server{Name: "fast", Flops: 1e9, PowerW: 400, Active: true}               // meets: 100 s
	lean := Server{Name: "lean", Flops: 1e9, PowerW: 100, Active: true, WaitSec: 900} // misses: 1000 s
	slow := Server{Name: "slow", Flops: 1e8, PowerW: 100, Active: true}               // misses: 1000 s exec

	c := ByDeadlineSlack(1e11, 0, 500)
	ranked := Rank([]Server{slow, lean, fast}, c)
	if ranked[0].Name != "fast" {
		t.Fatalf("feasible server must rank first, got %v", ranked[0].Name)
	}
	// The two misses order least-late first: lean misses by 500, slow
	// by 500 — equal, so GreenPerf breaks the tie (lean wins).
	if ranked[1].Name != "lean" || ranked[2].Name != "slow" {
		t.Fatalf("miss ordering wrong: %v, %v", ranked[1].Name, ranked[2].Name)
	}

	// Both feasible: GreenPerf decides.
	loose := ByDeadlineSlack(1e11, 0, 1e6)
	ranked = Rank([]Server{fast, lean}, loose)
	if ranked[0].Name != "lean" {
		t.Error("feasible set must stay green-ordered")
	}
	if c.Name() == "" {
		t.Error("criterion must name itself")
	}
}

func TestByValueEfficiency(t *testing.T) {
	lean := Server{Name: "lean", Flops: 1e9, PowerW: 100, Active: true}
	hungry := Server{Name: "hungry", Flops: 1e9, PowerW: 400, Active: true}
	c := ByValueEfficiency(1e11, 2)
	ranked := Rank([]Server{hungry, lean}, c)
	if ranked[0].Name != "lean" {
		t.Errorf("dollars per joule must favour the lean server, got %v", ranked[0].Name)
	}
	if c.Name() == "" {
		t.Error("criterion must name itself")
	}
}
