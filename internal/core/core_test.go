package core

import (
	"math"
	"testing"
	"testing/quick"
)

func srv(name string, flops, pw float64) Server {
	return Server{Name: name, Flops: flops, PowerW: pw, Active: true}
}

func TestValidate(t *testing.T) {
	good := Server{Name: "s", Flops: 1e9, PowerW: 100}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Server{
		{Flops: 1e9, PowerW: 100},                          // empty name
		{Name: "s", Flops: 0, PowerW: 100},                 // no flops
		{Name: "s", Flops: 1e9, PowerW: 0},                 // no power
		{Name: "s", Flops: 1e9, PowerW: 1, BootSec: -1},    // negative boot
		{Name: "s", Flops: 1e9, PowerW: 1, WaitSec: -3},    // negative wait
		{Name: "s", Flops: 1e9, PowerW: 1, BootPowerW: -1}, // negative boot power
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid server accepted: %+v", i, c)
		}
	}
}

func TestGreenPerfRatio(t *testing.T) {
	s := srv("s", 2e9, 100)
	if got := s.GreenPerf(); got != 50e-9 {
		t.Fatalf("GreenPerf = %v, want 5e-8", got)
	}
}

func TestComputationTimeEq4(t *testing.T) {
	active := Server{Name: "a", Flops: 1e9, PowerW: 100, WaitSec: 7, Active: true, BootSec: 100}
	if got := active.ComputationTime(2e9); got != 9 {
		t.Fatalf("active time = %v, want ws+ni/fs = 9", got)
	}
	inactive := Server{Name: "i", Flops: 1e9, PowerW: 100, WaitSec: 7, Active: false, BootSec: 100}
	if got := inactive.ComputationTime(2e9); got != 102 {
		t.Fatalf("inactive time = %v, want bts+ni/fs = 102", got)
	}
}

func TestEnergyConsumptionEq5(t *testing.T) {
	active := Server{Name: "a", Flops: 1e9, PowerW: 100, Active: true, BootSec: 60, BootPowerW: 150}
	if got := active.EnergyConsumption(2e9); got != 200 {
		t.Fatalf("active energy = %v, want cs·ni/fs = 200", got)
	}
	inactive := active
	inactive.Active = false
	if got := inactive.EnergyConsumption(2e9); got != 60*150+200 {
		t.Fatalf("inactive energy = %v, want bts·bcs + cs·ni/fs = 9200", got)
	}
}

func TestScoreExponentLimitsEq7(t *testing.T) {
	// P → −0.9 ⇒ 2/0.1 − 1 = 19 (time dominates).
	if got := ScoreExponent(-0.9); math.Abs(got-19) > 1e-9 {
		t.Fatalf("exponent(-0.9) = %v, want 19", got)
	}
	// P → 0 ⇒ 1 (time × energy).
	if got := ScoreExponent(0); got != 1 {
		t.Fatalf("exponent(0) = %v, want 1", got)
	}
	// P → 0.9 ⇒ 2/1.9 − 1 ≈ 0.0526 (energy dominates).
	if got := ScoreExponent(0.9); math.Abs(got-(2/1.9-1)) > 1e-12 {
		t.Fatalf("exponent(0.9) = %v", got)
	}
	// Clamping: ±1 behave as ±0.9.
	if ScoreExponent(-1) != ScoreExponent(-0.9) || ScoreExponent(1) != ScoreExponent(0.9) {
		t.Fatal("exponent must clamp user preference to ±0.9")
	}
}

func TestScoreAtZeroIsEDP(t *testing.T) {
	s := Server{Name: "s", Flops: 1e9, PowerW: 100, WaitSec: 5, Active: true}
	ops := 3e9
	want := s.ComputationTime(ops) * s.EnergyConsumption(ops)
	if got := s.Score(ops, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Score(P=0) = %v, want EDP %v", got, want)
	}
}

func TestScoreOrderingFollowsPreference(t *testing.T) {
	// fast-but-hungry vs slow-but-lean.
	fast := Server{Name: "fast", Flops: 10e9, PowerW: 400, Active: true}
	lean := Server{Name: "lean", Flops: 2e9, PowerW: 60, Active: true}
	ops := 1e12
	// Performance-seeking user: fast server must score lower (better).
	if !(fast.Score(ops, -0.9) < lean.Score(ops, -0.9)) {
		t.Error("P=-0.9 should prefer the fast server")
	}
	// Efficiency-seeking user: per-task energy fast=400*100=4e4,
	// lean=60*500=3e4 → lean wins.
	if !(lean.Score(ops, 0.9) < fast.Score(ops, 0.9)) {
		t.Error("P=+0.9 should prefer the lean server")
	}
}

func TestUserPrefClamped(t *testing.T) {
	if PrefMaxPerformance.Clamped() != -0.9 {
		t.Fatal("-1 should clamp to -0.9")
	}
	if PrefMaxEfficiency.Clamped() != 0.9 {
		t.Fatal("+1 should clamp to +0.9")
	}
	if UserPref(0.5).Clamped() != 0.5 {
		t.Fatal("in-range preference should pass through")
	}
}

func TestProviderPrefEq1(t *testing.T) {
	pp := ProviderPref{Alpha: 0.6, Beta: 0.4}
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	// c=0.5, u=0.25 → 0.6*0.5 + 0.4*0.25 = 0.4.
	if got := pp.Eval(0.25, 0.5); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Eval = %v, want 0.4", got)
	}
	// Cheap electricity and high utilization → max availability.
	if got := pp.Eval(1, 0); got != 1 {
		t.Fatalf("Eval(1,0) = %v, want 1", got)
	}
	// Expensive electricity and idle platform → min availability.
	if got := pp.Eval(0, 1); got != 0 {
		t.Fatalf("Eval(0,1) = %v, want 0", got)
	}
	// Inputs outside [0,1] are clamped.
	if got := pp.Eval(5, -3); got != 1 {
		t.Fatalf("clamped Eval = %v, want 1", got)
	}
}

func TestProviderPrefValidate(t *testing.T) {
	if err := (ProviderPref{Alpha: -0.1, Beta: 0.5}).Validate(); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if err := (ProviderPref{Alpha: 0.8, Beta: 0.8}).Validate(); err == nil {
		t.Fatal("weights summing above 1 accepted")
	}
	if err := DefaultProviderPref.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCombinePreferencesEq3(t *testing.T) {
	// Efficiency-seeking user (P_user→0.9): combination ≈ −0.1·provider.
	got := CombinePreferences(1, PrefMaxEfficiency)
	if math.Abs(float64(got)-(-0.1)) > 1e-12 {
		t.Fatalf("combine(1, +1) = %v, want -0.1", got)
	}
	// Performance-seeking user: full provider pull of −1.9.
	got = CombinePreferences(1, PrefMaxPerformance)
	if math.Abs(float64(got)-(-1.9)) > 1e-12 {
		t.Fatalf("combine(1, -1) = %v, want -1.9", got)
	}
	// Zero provider preference neutralizes the user.
	if CombinePreferences(0, PrefMaxPerformance) != 0 {
		t.Fatal("combine(0, u) should be 0")
	}
}

func TestRankCriteria(t *testing.T) {
	servers := []Server{
		srv("hungry-fast", 10e9, 500), // gp = 50e-9
		srv("lean-slow", 2e9, 60),     // gp = 30e-9
		srv("balanced", 5e9, 200),     // gp = 40e-9
	}
	gp := Rank(servers, ByGreenPerf())
	if gp[0].Name != "lean-slow" || gp[1].Name != "balanced" || gp[2].Name != "hungry-fast" {
		t.Fatalf("GreenPerf rank = %v", names(gp))
	}
	pw := Rank(servers, ByPower())
	if pw[0].Name != "lean-slow" || pw[2].Name != "hungry-fast" {
		t.Fatalf("Power rank = %v", names(pw))
	}
	pf := Rank(servers, ByPerformance())
	if pf[0].Name != "hungry-fast" || pf[2].Name != "lean-slow" {
		t.Fatalf("Performance rank = %v", names(pf))
	}
	// Rank must not mutate its input.
	if servers[0].Name != "hungry-fast" {
		t.Fatal("Rank mutated input slice")
	}
}

func TestRankTiebreaks(t *testing.T) {
	a := srv("a", 5e9, 100)
	b := srv("b", 9e9, 100) // same power, faster
	got := Rank([]Server{a, b}, ByPower())
	if got[0].Name != "b" {
		t.Fatal("power tie must break by performance descending")
	}
	c := srv("c", 9e9, 100)
	got = Rank([]Server{c, b}, ByPower())
	if got[0].Name != "b" {
		t.Fatal("full tie must break by name")
	}
	got = Rank([]Server{a, b}, ByPerformance())
	if got[0].Name != "b" {
		t.Fatal("performance rank wrong")
	}
	d := srv("d", 5e9, 60) // same perf as a, cheaper
	got = Rank([]Server{a, d}, ByPerformance())
	if got[0].Name != "d" {
		t.Fatal("performance tie must break by power ascending")
	}
}

func TestByScoreCriterion(t *testing.T) {
	fast := Server{Name: "fast", Flops: 10e9, PowerW: 400, Active: true}
	lean := Server{Name: "lean", Flops: 2e9, PowerW: 60, Active: true}
	c := ByScore(1e12, -0.9)
	got := Rank([]Server{lean, fast}, c)
	if got[0].Name != "fast" {
		t.Fatal("score rank with P=-0.9 should put fast first")
	}
	c = ByScore(1e12, 0.9)
	got = Rank([]Server{fast, lean}, c)
	if got[0].Name != "lean" {
		t.Fatal("score rank with P=+0.9 should put lean first")
	}
	if ByScore(1, 0.5).Name() == "" || ByPower().Name() != "POWER" ||
		ByPerformance().Name() != "PERFORMANCE" || ByGreenPerf().Name() != "GREENPERF" {
		t.Fatal("criterion names wrong")
	}
}

func TestFigure1Example(t *testing.T) {
	// Figure 1: 5 servers, 7 tasks; most energy-efficient servers get
	// priority, S0 being the best under GreenPerf.
	servers := []Server{
		srv("S0", 10e9, 100), // gp 10e-9 best
		srv("S1", 8e9, 120),  // gp 15e-9
		srv("S2", 6e9, 150),  // gp 25e-9
		srv("S3", 5e9, 200),  // gp 40e-9
		srv("S4", 4e9, 300),  // gp 75e-9
	}
	slots := map[string]int{"S0": 2, "S1": 2, "S2": 1, "S3": 1, "S4": 1}
	got := PlaceGreedy(servers, ByGreenPerf(), 7, slots)
	if len(got) != 7 {
		t.Fatalf("placed %d tasks, want 7", len(got))
	}
	counts := map[string]int{}
	for _, a := range got {
		counts[a.Server]++
	}
	if counts["S0"] != 2 || counts["S1"] != 2 {
		t.Fatalf("best servers should fill first: %v", counts)
	}
	// First two tasks land on S0 (the best server).
	if got[0].Server != "S0" || got[1].Server != "S0" {
		t.Fatalf("tasks 0-1 should go to S0: %+v", got[:2])
	}
	// All slots (7 total) used.
	for s, c := range counts {
		if c > slots[s] {
			t.Fatalf("server %s overloaded: %d > %d", s, c, slots[s])
		}
	}
}

func TestPlaceGreedyMoreTasksThanSlots(t *testing.T) {
	servers := []Server{srv("a", 1e9, 10)}
	got := PlaceGreedy(servers, ByPower(), 5, map[string]int{"a": 2})
	if len(got) != 2 {
		t.Fatalf("placed %d, want 2 (capacity exhausted)", len(got))
	}
}

func TestSelectCandidatesAlgorithm1(t *testing.T) {
	sorted := []Server{ // already GreenPerf-sorted
		srv("a", 10e9, 100),
		srv("b", 8e9, 150),
		srv("c", 5e9, 250),
	}
	// PTotal = 500. pref 0.5 → Prequired = 250 → a (100) + b (150)
	// reaches exactly 250 at the second element: loop adds a, p=100 <
	// 250, adds b, p=250, stop.
	res := SelectCandidates(sorted, 0.5)
	if len(res) != 2 || res[0].Name != "a" || res[1].Name != "b" {
		t.Fatalf("candidates = %v, want [a b]", names(res))
	}
	// pref 0 → empty; pref 1 → all.
	if len(SelectCandidates(sorted, 0)) != 0 {
		t.Fatal("pref 0 should select nothing")
	}
	if len(SelectCandidates(sorted, 1)) != 3 {
		t.Fatal("pref 1 should select everything")
	}
	// Out-of-range prefs clamp.
	if len(SelectCandidates(sorted, 7)) != 3 || len(SelectCandidates(sorted, -1)) != 0 {
		t.Fatal("preference clamping wrong")
	}
	if SelectCandidates(nil, 0.5) != nil {
		t.Fatal("empty input should yield empty output")
	}
}

// Property: Algorithm 1's result is always a prefix of the input,
// covers Prequired, and is minimal (dropping its last element falls
// below Prequired).
func TestPropertySelectCandidates(t *testing.T) {
	f := func(powers []uint8, prefRaw uint8) bool {
		var sorted []Server
		for i, p := range powers {
			sorted = append(sorted, srv(string(rune('a'+i%26))+string(rune('0'+i/26%10)), 1e9, float64(p)+1))
		}
		pref := float64(prefRaw) / 255
		res := SelectCandidates(sorted, pref)
		// Prefix check.
		for i := range res {
			if res[i].Name != sorted[i].Name {
				return false
			}
		}
		pTotal, pRes := 0.0, 0.0
		for _, s := range sorted {
			pTotal += s.PowerW
		}
		for _, s := range res {
			pRes += s.PowerW
		}
		pReq := pref * pTotal
		if pRes < pReq-1e-9 {
			return false // must cover requirement
		}
		if len(res) > 0 && pRes-res[len(res)-1].PowerW >= pReq && pReq > 0 {
			return false // not minimal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: score is monotone — dominating servers (faster AND leaner,
// same state) always score better for every preference.
func TestPropertyScoreDominance(t *testing.T) {
	f := func(fRaw, pRaw uint16, prefRaw int8) bool {
		flops := float64(fRaw)*1e6 + 1e9
		pw := float64(pRaw)/10 + 50
		better := Server{Name: "b", Flops: flops * 1.5, PowerW: pw * 0.7, Active: true}
		worse := Server{Name: "w", Flops: flops, PowerW: pw, Active: true}
		pref := UserPref(float64(prefRaw) / 127 * 0.9)
		ops := 1e12
		return better.Score(ops, pref) < worse.Score(ops, pref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. 1 stays in [0,1] for all valid weights and inputs.
func TestPropertyProviderPrefBounded(t *testing.T) {
	f := func(aRaw, bRaw, uRaw, cRaw uint8) bool {
		alpha := float64(aRaw) / 255
		beta := (1 - alpha) * float64(bRaw) / 255
		pp := ProviderPref{Alpha: alpha, Beta: beta}
		if pp.Validate() != nil {
			return false
		}
		v := pp.Eval(float64(uRaw)/255, float64(cRaw)/255)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateQuota(t *testing.T) {
	// The paper's §IV-C rules on a 12-node platform.
	cases := []struct {
		frac float64
		want int
	}{
		{0.20, 2},  // T > 25°C → 20% of 12 = 2.4 → 2
		{0.40, 4},  // 1.0 ≥ c > 0.8
		{0.70, 8},  // 0.8 ≥ c > 0.5 → 8.4 → 8
		{1.00, 12}, // c < 0.5
	}
	for _, c := range cases {
		if got := CandidateQuota(12, c.frac, 1); got != c.want {
			t.Errorf("quota(12, %v) = %d, want %d", c.frac, got, c.want)
		}
	}
	if got := CandidateQuota(12, 0.01, 2); got != 2 {
		t.Errorf("minimum floor not applied: %d", got)
	}
	if got := CandidateQuota(12, 5, 0); got != 12 {
		t.Errorf("ceiling not applied: %d", got)
	}
}

// Property: Rank output is a permutation of its input and invariant to
// input order (total orders make ranking canonical).
func TestPropertyRankPermutationInvariance(t *testing.T) {
	f := func(flopsRaw, powerRaw [6]uint16, shuffle uint8) bool {
		servers := make([]Server, 6)
		for i := range servers {
			servers[i] = srv(string(rune('a'+i)), float64(flopsRaw[i])+1e9, float64(powerRaw[i])+1)
		}
		shuffled := append([]Server(nil), servers...)
		// Deterministic pseudo-shuffle from the seed byte.
		for i := range shuffled {
			j := (i + int(shuffle)) % len(shuffled)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		for _, c := range []Criterion{ByGreenPerf(), ByPower(), ByPerformance(), ByScore(1e12, 0.3)} {
			a := Rank(servers, c)
			b := Rank(shuffled, c)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].Name != b[i].Name {
					return false
				}
			}
			// Permutation check: same multiset of names.
			seen := map[string]int{}
			for _, s := range a {
				seen[s.Name]++
			}
			for _, s := range servers {
				seen[s.Name]--
			}
			for _, v := range seen {
				if v != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CombinePreferences always lands in [-2, 0] and is monotone
// in the user preference (a more efficiency-seeking user never gets a
// more performance-pulled combination).
func TestPropertyCombinePreferencesRange(t *testing.T) {
	f := func(provRaw uint8, u1Raw, u2Raw int8) bool {
		prov := float64(provRaw) / 255
		u1 := UserPref(float64(u1Raw) / 127)
		u2 := UserPref(float64(u2Raw) / 127)
		c1 := float64(CombinePreferences(prov, u1))
		c2 := float64(CombinePreferences(prov, u2))
		if c1 < -2 || c1 > 0 {
			return false
		}
		if u1.Clamped() <= u2.Clamped() && c1 > c2+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func names(servers []Server) []string {
	out := make([]string, len(servers))
	for i, s := range servers {
		out[i] = s.Name
	}
	return out
}

func BenchmarkRankGreenPerf(b *testing.B) {
	servers := make([]Server, 128)
	for i := range servers {
		servers[i] = srv(string(rune('a'+i%26))+string(rune('0'+i/26)), float64(i%17+1)*1e9, float64(i%13+1)*25)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Rank(servers, ByGreenPerf())
	}
}

func BenchmarkScore(b *testing.B) {
	s := Server{Name: "s", Flops: 9e9, PowerW: 222, WaitSec: 10, Active: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Score(1.9e12, 0.3)
	}
}
