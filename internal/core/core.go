// Package core implements the paper's primary contribution: the
// GreenPerf energy-efficiency metric, the provider/user preference
// model (Eq. 1–3), the per-task computation-time and energy models
// (Eq. 4–5), the combined score used to rank servers (Eq. 6–7), and
// the greedy candidate-selection algorithm under a power cap
// (Algorithm 1).
//
// Everything in this package is a pure function over server
// descriptions: no clocks, no goroutines, no I/O. Both the live
// middleware and the discrete-event simulator call into it, which is
// what makes the two execution modes comparable.
package core

import (
	"fmt"
	"math"
	"sort"
)

// Server is the per-server knowledge the scheduler needs at decision
// time, using the paper's §III-C notation.
type Server struct {
	Name string

	Flops  float64 // fs: sustained performance, flop/s
	PowerW float64 // cs: average draw when loaded, watts

	BootPowerW float64 // bcs: draw during boot, watts
	BootSec    float64 // bts: boot duration, seconds
	WaitSec    float64 // ws: estimated wait in the task queue, seconds

	// CarbonIntensity is the grid carbon intensity the server's site
	// sees at decision time, in gCO2/kWh (0 = unknown). It extends the
	// paper's notation with the where/when of the watts; the
	// carbon-aware criteria in carbon.go consume it.
	CarbonIntensity float64

	Active bool // powered on (false = must boot first)
}

// Validate reports a descriptive error for unusable inputs.
func (s Server) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("core: server with empty name")
	case s.Flops <= 0:
		return fmt.Errorf("core: server %s has non-positive flops", s.Name)
	case s.PowerW <= 0:
		return fmt.Errorf("core: server %s has non-positive power", s.Name)
	case s.BootSec < 0 || s.BootPowerW < 0 || s.WaitSec < 0:
		return fmt.Errorf("core: server %s has negative boot/wait figures", s.Name)
	default:
		return nil
	}
}

// GreenPerf returns the paper's ranking ratio
//
//	Power Consumption / Performance
//
// in watts per flop/s; lower is better ("the most energy-efficient
// servers are given priority; S0 being the best server under the
// GreenPerf metric", Fig. 1).
func (s Server) GreenPerf() float64 { return s.PowerW / s.Flops }

// ComputationTime implements Eq. 4: the completion time of a task of
// ops flops, accounting for the queue on an active server or the boot
// delay on an inactive one.
//
//	active:   ws  + ni/fs
//	inactive: bts + ni/fs
func (s Server) ComputationTime(ops float64) float64 {
	exec := ops / s.Flops
	if s.Active {
		return s.WaitSec + exec
	}
	return s.BootSec + exec
}

// EnergyConsumption implements Eq. 5: the energy attributed to the
// task, including the boot investment for inactive servers.
//
//	active:   cs·ni/fs
//	inactive: bts·bcs + cs·ni/fs
func (s Server) EnergyConsumption(ops float64) float64 {
	e := s.PowerW * ops / s.Flops
	if !s.Active {
		e += s.BootSec * s.BootPowerW
	}
	return e
}

// Score implements Eq. 6:
//
//	Sc(P) = (computation time)^(2/(P+1) − 1) × (energy consumption)
//
// for a user preference P. Lower scores rank first. The exponent
// interpolates the paper's Eq. 7 limits:
//
//	P → −0.9 : exponent 19    → time dominates (maximize performance)
//	P →  0   : exponent 1     → time × energy (energy-delay product)
//	P → +0.9 : exponent ≈0.05 → energy dominates (maximize efficiency)
func (s Server) Score(ops float64, pref UserPref) float64 {
	t := s.ComputationTime(ops)
	e := s.EnergyConsumption(ops)
	return math.Pow(t, ScoreExponent(pref)) * e
}

// ScoreExponent returns Eq. 6's time exponent 2/(P+1) − 1 for a user
// preference.
func ScoreExponent(pref UserPref) float64 {
	p := pref.Clamped()
	return 2/(float64(p)+1) - 1
}

// UserPref is Preference_user of Eq. 2: −1 maximizes performance, 0 is
// indifferent, +1 maximizes energy efficiency. The paper restricts the
// effective range to [−0.9, 0.9] "because if all users choose 1, it
// would result in waiting queues on the most energy-efficient nodes";
// Clamped applies that restriction.
type UserPref float64

// Canonical user preferences (Eq. 2).
const (
	PrefMaxPerformance UserPref = -1
	PrefNone           UserPref = 0
	PrefMaxEfficiency  UserPref = 1
)

// ClampLimit is the effective bound the paper imposes on user
// preferences.
const ClampLimit = 0.9

// Clamped restricts the preference to [−0.9, 0.9].
func (p UserPref) Clamped() UserPref {
	if p < -ClampLimit {
		return -ClampLimit
	}
	if p > ClampLimit {
		return ClampLimit
	}
	return p
}

// ProviderPref models Eq. 1: Preference_provider(u, c) = α(1−c) + βu,
// the provider's appetite for making servers available given the
// current electricity cost ratio c and resource utilization u. α and β
// weight the two terms; with α+β ≤ 1 and u, c ∈ [0,1] the result stays
// in [0,1]. "The higher the value, the larger the number of available
// servers for a time period."
type ProviderPref struct {
	Alpha float64 // weight of cheap electricity (1−c)
	Beta  float64 // weight of resource utilization u
}

// DefaultProviderPref weights electricity cost and utilization
// equally.
var DefaultProviderPref = ProviderPref{Alpha: 0.5, Beta: 0.5}

// Validate rejects weights that can push the preference outside [0,1].
func (pp ProviderPref) Validate() error {
	if pp.Alpha < 0 || pp.Beta < 0 {
		return fmt.Errorf("core: negative preference weights %+v", pp)
	}
	if pp.Alpha+pp.Beta > 1+1e-12 {
		return fmt.Errorf("core: weights α+β = %v exceed 1; preference would leave [0,1]", pp.Alpha+pp.Beta)
	}
	return nil
}

// Eval computes Eq. 1 with u and c clamped to [0,1].
func (pp ProviderPref) Eval(utilization, costRatio float64) float64 {
	u := clamp01(utilization)
	c := clamp01(costRatio)
	return pp.Alpha*(1-c) + pp.Beta*u
}

// CombinePreferences implements Eq. 3, the weighting of the user's
// preference by the provider's:
//
//	(P_provider, P_user) ⇔ P_provider × (P_user − 1)
//
// The result lands in [−2·P_provider, 0]: a strong provider preference
// amplifies how far a performance-seeking user (P_user = −1) can pull
// the score toward performance, while an efficiency-seeking user
// (P_user → 1) neutralizes the pull. The returned value is reusable as
// an effective UserPref after clamping.
func CombinePreferences(provider float64, user UserPref) UserPref {
	return UserPref(clamp01(provider) * (float64(user.Clamped()) - 1))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Rank orders servers by a criterion, returning a new slice.
func Rank(servers []Server, c Criterion) []Server {
	out := make([]Server, len(servers))
	copy(out, servers)
	sort.SliceStable(out, func(i, j int) bool { return c.Less(out[i], out[j]) })
	return out
}

// Criterion is a sorting criterion over servers. Ties inside the stock
// criteria break by the secondary parameter (performance, descending —
// "a secondary parameter, hereafter considered to be the node's
// performance", §III-A) and finally by name for determinism.
type Criterion interface {
	// Less reports whether a ranks strictly before b.
	Less(a, b Server) bool
	// Name identifies the criterion in reports.
	Name() string
}

type byGreenPerf struct{}

func (byGreenPerf) Name() string { return "GREENPERF" }
func (byGreenPerf) Less(a, b Server) bool {
	ga, gb := a.GreenPerf(), b.GreenPerf()
	if ga != gb {
		return ga < gb
	}
	if a.Flops != b.Flops {
		return a.Flops > b.Flops
	}
	return a.Name < b.Name
}

type byPower struct{}

func (byPower) Name() string { return "POWER" }
func (byPower) Less(a, b Server) bool {
	if a.PowerW != b.PowerW {
		return a.PowerW < b.PowerW
	}
	if a.Flops != b.Flops {
		return a.Flops > b.Flops
	}
	return a.Name < b.Name
}

type byPerformance struct{}

func (byPerformance) Name() string { return "PERFORMANCE" }
func (byPerformance) Less(a, b Server) bool {
	if a.Flops != b.Flops {
		return a.Flops > b.Flops
	}
	if a.PowerW != b.PowerW {
		return a.PowerW < b.PowerW
	}
	return a.Name < b.Name
}

// byScore ranks by Eq. 6 for a task size and effective preference.
type byScore struct {
	ops  float64
	pref UserPref
}

func (s byScore) Name() string { return fmt.Sprintf("SCORE(P=%.2f)", float64(s.pref)) }
func (s byScore) Less(a, b Server) bool {
	sa, sb := a.Score(s.ops, s.pref), b.Score(s.ops, s.pref)
	if sa != sb {
		return sa < sb
	}
	return a.Name < b.Name
}

// ByGreenPerf ranks by the power/performance ratio, ascending.
func ByGreenPerf() Criterion { return byGreenPerf{} }

// ByPower ranks by average power draw, ascending (the paper's POWER
// policy, the energy bound of GreenPerf).
func ByPower() Criterion { return byPower{} }

// ByPerformance ranks by sustained flops, descending (the paper's
// PERFORMANCE policy, the performance bound of GreenPerf).
func ByPerformance() Criterion { return byPerformance{} }

// ByScore ranks by the Eq. 6 score of a task of ops flops under the
// given (already combined) user preference.
func ByScore(ops float64, pref UserPref) Criterion { return byScore{ops: ops, pref: pref} }

// SelectCandidates implements Algorithm 1: given servers already
// sorted by GreenPerf (list T), accumulate servers greedily until
// their summed power reaches
//
//	P_required = Preference_provider × P_Total
//
// where P_Total is the summed power of all servers. The result RES is
// a prefix of the sorted list — the minimal set of most efficient
// servers that covers the provider's power budget. providerPref is
// clamped to [0,1]; a preference of 0 yields an empty set, 1 yields
// every server.
func SelectCandidates(sorted []Server, providerPref float64) []Server {
	pTotal := 0.0
	for _, s := range sorted {
		pTotal += s.PowerW
	}
	pRequired := clamp01(providerPref) * pTotal
	var res []Server
	p := 0.0
	for _, s := range sorted {
		if p >= pRequired {
			break
		}
		p += s.PowerW
		res = append(res, s)
	}
	return res
}

// CandidateQuota converts the administrator threshold rules of §IV-C
// into a node count: the number of candidate nodes as a fraction of
// total nodes, rounded down but never below minNodes (the paper's heat
// event keeps 2 nodes alive) nor above totalNodes.
func CandidateQuota(totalNodes int, fraction float64, minNodes int) int {
	n := int(math.Floor(clamp01(fraction) * float64(totalNodes)))
	if n < minNodes {
		n = minNodes
	}
	if n > totalNodes {
		n = totalNodes
	}
	return n
}

// Assignment is one task-to-server placement decision.
type Assignment struct {
	Task   int
	Server string
}

// PlaceGreedy reproduces the Figure 1 sketch: place k independent,
// identical tasks on servers ranked by a criterion, one task per free
// slot, always preferring the best-ranked server with remaining
// capacity. slots maps server name to capacity (cores). The returned
// assignments are in task order.
func PlaceGreedy(servers []Server, c Criterion, tasks int, slots map[string]int) []Assignment {
	ranked := Rank(servers, c)
	free := make(map[string]int, len(slots))
	for k, v := range slots {
		free[k] = v
	}
	var out []Assignment
	for task := 0; task < tasks; task++ {
		for _, s := range ranked {
			if free[s.Name] > 0 {
				free[s.Name]--
				out = append(out, Assignment{Task: task, Server: s.Name})
				break
			}
		}
	}
	return out
}
