package core

// This file holds the SLA-aware extensions of the paper's ranking
// model: deadline slack (how much margin a server leaves before a
// task's deadline) and value efficiency (how many dollars a joule
// spent on this server buys). Package sla supplies the contract
// semantics; these are the pure per-server numbers.

import "fmt"

// DeadlineSlack returns deadline − now − ComputationTime(ops): the
// margin (seconds) a task of ops flops would have if placed on the
// server at time now. Negative slack means the server cannot meet the
// deadline.
func (s Server) DeadlineSlack(ops, now, deadline float64) float64 {
	return deadline - now - s.ComputationTime(ops)
}

// ValuePerJoule returns the dollars earned per joule spent when a task
// of ops flops worth value dollars runs on the server — the
// revenue-efficiency analogue of GreenPerf. Higher is better.
func (s Server) ValuePerJoule(ops, value float64) float64 {
	return value / s.EnergyConsumption(ops)
}

type byDeadlineSlack struct {
	ops      float64
	now      float64
	deadline float64
}

func (c byDeadlineSlack) Name() string {
	return fmt.Sprintf("DEADLINESLACK(d=%.0f)", c.deadline)
}

func (c byDeadlineSlack) Less(a, b Server) bool {
	sa := a.DeadlineSlack(c.ops, c.now, c.deadline)
	sb := b.DeadlineSlack(c.ops, c.now, c.deadline)
	ma, mb := sa >= 0, sb >= 0
	switch {
	case ma && !mb:
		return true
	case !ma && mb:
		return false
	case ma && mb:
		// Both feasible: stay green among them.
		return byGreenPerf{}.Less(a, b)
	default:
		// Both miss: least-late first.
		if sa != sb {
			return sa > sb
		}
		return byGreenPerf{}.Less(a, b)
	}
}

// ByDeadlineSlack ranks servers for a task of ops flops due at
// deadline (absolute, decision time now): servers that meet the
// deadline first — ordered by GreenPerf among themselves, so placement
// stays energy-efficient *within the feasible set* — then the misses,
// least-late first.
func ByDeadlineSlack(ops, now, deadline float64) Criterion {
	return byDeadlineSlack{ops: ops, now: now, deadline: deadline}
}

type byValueEfficiency struct {
	ops   float64
	value float64
}

func (c byValueEfficiency) Name() string {
	return fmt.Sprintf("VALUEEFF($%.2f)", c.value)
}

func (c byValueEfficiency) Less(a, b Server) bool {
	va, vb := a.ValuePerJoule(c.ops, c.value), b.ValuePerJoule(c.ops, c.value)
	if va != vb {
		return va > vb
	}
	if a.Flops != b.Flops {
		return a.Flops > b.Flops
	}
	return a.Name < b.Name
}

// ByValueEfficiency ranks by dollars per joule, descending — which
// server converts energy into revenue best for this task. With equal
// task value everywhere the ordering degrades to minimum energy.
func ByValueEfficiency(ops, value float64) Criterion {
	return byValueEfficiency{ops: ops, value: value}
}
