package carbon

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Point is one sample of a recorded grid trace: the intensity (and
// renewable fraction) in force from T until the next point.
type Point struct {
	T float64 // seconds on the simulation timeline
	G float64 // gCO2/kWh
	R float64 // renewable fraction in [0,1]
}

// Trace is a piecewise-constant signal from recorded samples — the
// stand-in for the grid-operator / electricityMap-style intensity
// feeds real deployments ingest. Before the first point the first
// value holds; after the last point the last value holds.
type Trace struct {
	name   string
	points []Point
}

// NewTrace builds a trace signal. Points must be non-empty with
// strictly ascending times, non-negative intensities and renewable
// fractions in [0,1].
func NewTrace(name string, points []Point) (*Trace, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("carbon: empty trace")
	}
	for i, p := range points {
		if i > 0 && p.T <= points[i-1].T {
			return nil, fmt.Errorf("carbon: trace point %d: time %v not after %v", i, p.T, points[i-1].T)
		}
		if p.G < 0 {
			return nil, fmt.Errorf("carbon: trace point %d: negative intensity %v", i, p.G)
		}
		if p.R < 0 || p.R > 1 {
			return nil, fmt.Errorf("carbon: trace point %d: renewable fraction %v outside [0,1]", i, p.R)
		}
	}
	if name == "" {
		name = "trace"
	}
	out := make([]Point, len(points))
	copy(out, points)
	return &Trace{name: name, points: out}, nil
}

// Name implements Signal.
func (tr *Trace) Name() string { return tr.name }

// Points returns a copy of the trace samples.
func (tr *Trace) Points() []Point {
	out := make([]Point, len(tr.points))
	copy(out, tr.points)
	return out
}

// at returns the point in force at time t.
func (tr *Trace) at(t float64) Point {
	i := sort.Search(len(tr.points), func(i int) bool { return tr.points[i].T > t })
	if i == 0 {
		return tr.points[0]
	}
	return tr.points[i-1]
}

// IntensityAt implements Signal.
func (tr *Trace) IntensityAt(t float64) float64 { return tr.at(t).G }

// RenewableAt implements Signal.
func (tr *Trace) RenewableAt(t float64) float64 { return tr.at(t).R }

// MeanIntensity implements Signal exactly, weighting each step by the
// time it is in force inside [t0, t1].
func (tr *Trace) MeanIntensity(t0, t1 float64) float64 {
	breaks := make([]float64, len(tr.points))
	for i, p := range tr.points {
		breaks[i] = p.T
	}
	return meanPiecewise(tr.IntensityAt, breaks, t0, t1)
}

// ParseTrace reads a carbon-intensity trace in the same minimal CSV
// dialect as workload.ParseTrace:
//
//	# comment lines and blank lines are skipped
//	seconds,gco2_per_kwh[,renewable_fraction]
//
// Out-of-order rows are accepted and sorted; duplicate timestamps are
// an error (two intensities cannot be in force at once).
func ParseTrace(name string, r io.Reader) (*Trace, error) {
	scanner := bufio.NewScanner(r)
	var points []Point
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("carbon: trace line %d: want 2-3 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("carbon: trace line %d: bad time: %w", lineNo, err)
		}
		g, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("carbon: trace line %d: bad intensity: %w", lineNo, err)
		}
		p := Point{T: t, G: g}
		if len(fields) == 3 {
			p.R, err = strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("carbon: trace line %d: bad renewable fraction: %w", lineNo, err)
			}
		}
		points = append(points, p)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("carbon: reading trace: %w", err)
	}
	sort.SliceStable(points, func(i, j int) bool { return points[i].T < points[j].T })
	for i := 1; i < len(points); i++ {
		if points[i].T == points[i-1].T {
			return nil, fmt.Errorf("carbon: duplicate trace timestamp %v", points[i].T)
		}
	}
	return NewTrace(name, points)
}

// WriteTrace renders the trace in the ParseTrace format, renewable
// fractions included only when non-zero.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# seconds,gco2_per_kwh[,renewable_fraction]")
	for _, p := range tr.points {
		if p.R != 0 {
			fmt.Fprintf(bw, "%g,%g,%g\n", p.T, p.G, p.R)
		} else {
			fmt.Fprintf(bw, "%g,%g\n", p.T, p.G)
		}
	}
	return bw.Flush()
}
