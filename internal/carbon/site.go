package carbon

import (
	"fmt"
	"sort"
	"time"
)

// SiteProfile ties one physical site to its grid: the carbon signal of
// the regional grid it draws from, plus the facility overhead (PUE)
// that multiplies every IT joule into facility joules before the grid
// meter.
type SiteProfile struct {
	Site   string // site name, e.g. "lyon"
	Signal Signal
	// PUE is the power usage effectiveness multiplier applied to IT
	// energy when attributing emissions (≥1; 0 means 1.0, an ideal
	// facility).
	PUE float64
}

// Validate reports a descriptive error for unusable profiles.
func (sp SiteProfile) Validate() error {
	if sp.Signal == nil {
		return fmt.Errorf("carbon: site %q has no signal", sp.Site)
	}
	if sp.PUE < 0 || (sp.PUE > 0 && sp.PUE < 1) {
		return fmt.Errorf("carbon: site %q PUE %v must be 0 (=1.0) or ≥1", sp.Site, sp.PUE)
	}
	return nil
}

// pue returns the effective multiplier.
func (sp SiteProfile) pue() float64 {
	if sp.PUE == 0 {
		return 1
	}
	return sp.PUE
}

// Profile maps the clusters of a (possibly multi-site) platform onto
// site profiles, so each node sees the grid behind its own socket. A
// cluster without an explicit mapping uses the default site.
type Profile struct {
	def       SiteProfile
	byCluster map[string]SiteProfile
}

// NewProfile returns a profile with the given default site.
func NewProfile(def SiteProfile) (*Profile, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &Profile{def: def, byCluster: make(map[string]SiteProfile)}, nil
}

// MustProfile is NewProfile for static configuration; it panics on
// error.
func MustProfile(def SiteProfile) *Profile {
	p, err := NewProfile(def)
	if err != nil {
		panic(err)
	}
	return p
}

// SetCluster maps a cluster to a site profile.
func (p *Profile) SetCluster(cluster string, sp SiteProfile) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	p.byCluster[cluster] = sp
	return nil
}

// Site resolves the profile for a cluster (the default when unmapped).
func (p *Profile) Site(cluster string) SiteProfile {
	if sp, ok := p.byCluster[cluster]; ok {
		return sp
	}
	return p.def
}

// Sites returns the distinct site names in sorted order, default
// included.
func (p *Profile) Sites() []string {
	seen := map[string]bool{p.def.Site: true}
	for _, sp := range p.byCluster {
		seen[sp.Site] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// IntensityAt returns the grid intensity a cluster sees at time t.
func (p *Profile) IntensityAt(cluster string, t float64) float64 {
	return p.Site(cluster).Signal.IntensityAt(t)
}

// RenewableAt returns the renewable fraction a cluster sees at time t.
func (p *Profile) RenewableAt(cluster string, t float64) float64 {
	return p.Site(cluster).Signal.RenewableAt(t)
}

// Live adapts a signal to the wall clock for the live middleware: the
// returned function reports the intensity now, with t=0 pinned to
// epoch. It matches the middleware's meter-function idiom (value, ok).
func Live(sig Signal, epoch time.Time) func() (gPerKWh float64, ok bool) {
	return func() (float64, bool) {
		if sig == nil {
			return 0, false
		}
		return sig.IntensityAt(time.Since(epoch).Seconds()), true
	}
}
