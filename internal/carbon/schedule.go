package carbon

import (
	"fmt"
	"math"
	"sort"

	"greensched/internal/forecast"
)

// Window is one hour-of-day step of a daily carbon schedule.
type Window struct {
	StartHour float64 // [0,24)
	EndHour   float64 // exclusive; may wrap past midnight
	G         float64 // gCO2/kWh in force over the window
	R         float64 // renewable fraction in force
}

// Schedule is a daily step schedule — the carbon analogue of
// forecast.Tariff, repeating every 24 hours. Hours not covered by any
// window fall back to the Default window values.
type Schedule struct {
	name    string
	windows []Window
	defG    float64
	defR    float64
}

// NewSchedule builds a daily schedule. Uncovered hours yield defG /
// defR.
func NewSchedule(name string, windows []Window, defG, defR float64) (*Schedule, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("carbon: empty schedule")
	}
	for i, w := range windows {
		if w.StartHour < 0 || w.StartHour >= 24 || w.EndHour < 0 || w.EndHour > 24 {
			return nil, fmt.Errorf("carbon: schedule window %d hours out of range", i)
		}
		if w.G < 0 || w.R < 0 || w.R > 1 {
			return nil, fmt.Errorf("carbon: schedule window %d values out of range", i)
		}
	}
	if defG < 0 || defR < 0 || defR > 1 {
		return nil, fmt.Errorf("carbon: schedule defaults out of range")
	}
	if name == "" {
		name = "schedule"
	}
	out := make([]Window, len(windows))
	copy(out, windows)
	return &Schedule{name: name, windows: out, defG: defG, defR: defR}, nil
}

// FromTariff derives a carbon schedule from an electricity tariff: the
// paper's §IV-C cost states double as a coarse supply signal (peak
// price ⇔ peaking plants ⇔ dirty margin; deep off-peak ⇔ surplus
// base/renewable supply). Each window's cost ratio c∈[0,1] maps
// linearly onto [cleanG, dirtyG] with renewable fraction 1−c.
func FromTariff(tf forecast.Tariff, cleanG, dirtyG float64) (*Schedule, error) {
	if err := tf.Validate(); err != nil {
		return nil, err
	}
	if cleanG < 0 || dirtyG < cleanG {
		return nil, fmt.Errorf("carbon: intensity range [%v,%v] invalid", cleanG, dirtyG)
	}
	windows := make([]Window, 0, len(tf))
	for _, w := range tf {
		windows = append(windows, Window{
			StartHour: w.StartHour,
			EndHour:   w.EndHour,
			G:         cleanG + w.Cost*(dirtyG-cleanG),
			R:         1 - w.Cost,
		})
	}
	// Uncovered hours behave like regular price, matching
	// Tariff.CostAt's fallback of 1.0.
	return NewSchedule("tariff", windows, dirtyG, 0)
}

// Name implements Signal.
func (s *Schedule) Name() string { return s.name }

// at resolves the window in force at hour-of-day h.
func (s *Schedule) at(h float64) (float64, float64) {
	for _, w := range s.windows {
		if w.StartHour <= w.EndHour {
			if h >= w.StartHour && h < w.EndHour {
				return w.G, w.R
			}
		} else { // wraps midnight
			if h >= w.StartHour || h < w.EndHour {
				return w.G, w.R
			}
		}
	}
	return s.defG, s.defR
}

// IntensityAt implements Signal.
func (s *Schedule) IntensityAt(t float64) float64 {
	g, _ := s.at(hourOfDay(t))
	return g
}

// RenewableAt implements Signal.
func (s *Schedule) RenewableAt(t float64) float64 {
	_, r := s.at(hourOfDay(t))
	return r
}

// MeanIntensity implements Signal exactly by splitting [t0,t1] at
// every window boundary of every day the interval spans.
func (s *Schedule) MeanIntensity(t0, t1 float64) float64 {
	if t1 <= t0 {
		return s.IntensityAt(t0)
	}
	// Hour-of-day boundaries where any window starts or ends.
	hours := make([]float64, 0, 2*len(s.windows))
	for _, w := range s.windows {
		hours = append(hours, w.StartHour, w.EndHour)
	}
	sort.Float64s(hours)
	var breaks []float64
	firstDay := math.Floor(t0 / DaySeconds)
	lastDay := math.Floor(t1 / DaySeconds)
	for day := firstDay; day <= lastDay; day++ {
		for _, h := range hours {
			breaks = append(breaks, day*DaySeconds+h*3600)
		}
	}
	sort.Float64s(breaks)
	return meanPiecewise(s.IntensityAt, breaks, t0, t1)
}
