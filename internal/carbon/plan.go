package carbon

import (
	"fmt"

	"greensched/internal/provision"
)

// PlanRecords materializes a carbon signal into provisioning-plan
// records over [from, to), sampling every step seconds and emitting a
// record whenever the intensity moves by more than tol gCO2/kWh since
// the last emitted record (tol ≤ 0 emits every sample). The planner's
// lookahead then anticipates low-carbon windows exactly as it
// anticipates the paper's §IV-C price changes. temperature and cost
// fill the classic status fields so the carbon records compose with
// the existing heat/cost rules.
func PlanRecords(sig Signal, from, to, step, tol, temperature, cost float64) ([]provision.Record, error) {
	if sig == nil {
		return nil, fmt.Errorf("carbon: nil signal")
	}
	if to <= from {
		return nil, fmt.Errorf("carbon: empty horizon")
	}
	if step <= 0 {
		return nil, fmt.Errorf("carbon: non-positive step %v", step)
	}
	var out []provision.Record
	emitted := false
	last := 0.0
	for t := from; t < to; t += step {
		g := sig.IntensityAt(t)
		if emitted && tol > 0 && abs(g-last) <= tol {
			continue
		}
		out = append(out, provision.Record{
			Value:       int64(t),
			Temperature: temperature,
			Cost:        cost,
			Carbon:      g,
		})
		emitted = true
		last = g
	}
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
