// Package carbon models time-varying grid carbon-intensity signals and
// turns the simulator's exact energy accounting into grams of CO2.
//
// The paper's GreenPerf metric trades performance against watts; this
// package adds the other green axis: *when* and *where* those watts are
// drawn. Grid carbon intensity (gCO2 per kWh) and renewable
// availability vary by hour and by site, so the same joule costs very
// different emissions depending on the moment and the grid behind the
// socket. Related work schedules directly against such supply signals
// (Li et al., "On Time-Sensitive Revenue Management and Energy
// Scheduling in Green Data Centers"; Lu & Chen, "Simple and Effective
// Dynamic Provisioning for Power-Proportional Data Centers").
//
// The package provides:
//
//   - Signal, the interface over intensity sources, with exact
//     time-averaging so piecewise-constant energy integrates to exact
//     grams;
//   - Constant, Diurnal (sinusoidal day/night model), Trace
//     (piecewise-constant, CSV-loadable) and Schedule (daily step
//     windows, derivable from forecast tariff helpers) sources;
//   - SiteProfile / Profile, mapping clusters of a multi-site platform
//     onto different grids;
//   - Integrator, the watts→grams accumulator the simulator drives;
//   - PlanRecords, materializing a signal into provisioning-plan
//     records so the planner can anticipate low-carbon windows.
package carbon

import (
	"fmt"
	"math"
)

// JoulesPerKWh converts the simulator's joules into the kilowatt-hours
// carbon intensities are quoted against.
const JoulesPerKWh = 3.6e6

// DaySeconds is one diurnal period.
const DaySeconds = 86400.0

// Signal is a time-varying grid signal: carbon intensity in gCO2/kWh
// plus the fraction of supply coming from renewables. Times are
// seconds on the simulation timeline (t=0 is midnight of day zero, so
// hour-of-day math lines up with forecast.Tariff).
type Signal interface {
	// Name identifies the source in reports.
	Name() string
	// IntensityAt returns the grid carbon intensity at time t in
	// gCO2 per kWh drawn.
	IntensityAt(t float64) float64
	// RenewableAt returns the renewable supply fraction in [0,1].
	RenewableAt(t float64) float64
	// MeanIntensity returns the exact time-average of the intensity
	// over [t0, t1]. Implementations must be exact for their own
	// shape (analytic for sinusoids, step-weighted for traces) so
	// that integrating piecewise-constant power against the signal
	// yields exact grams. t1 < t0 is a caller bug; implementations
	// may treat it as an empty interval.
	MeanIntensity(t0, t1 float64) float64
}

// Constant is a flat grid: the degenerate signal that makes
// carbon-aware scheduling coincide with energy-aware scheduling.
type Constant struct {
	G float64 // gCO2/kWh
	R float64 // renewable fraction
}

// Name implements Signal.
func (c Constant) Name() string { return "constant" }

// IntensityAt implements Signal.
func (c Constant) IntensityAt(float64) float64 { return c.G }

// RenewableAt implements Signal.
func (c Constant) RenewableAt(float64) float64 { return c.R }

// MeanIntensity implements Signal.
func (c Constant) MeanIntensity(_, _ float64) float64 { return c.G }

// Validate reports a descriptive error for unusable parameters.
func (c Constant) Validate() error {
	if c.G < 0 || c.R < 0 || c.R > 1 {
		return fmt.Errorf("carbon: constant signal G=%v R=%v out of range", c.G, c.R)
	}
	return nil
}

// Diurnal is the synthetic day/night model: a sinusoid with one cycle
// per day, cleanest (lowest intensity, highest renewable fraction) at
// CleanHour — a solar-dominated grid peaks its renewables around
// midday; a wind-dominated one often overnight.
//
//	I(t) = MeanG − AmplitudeG·cos(2π·(h−CleanHour)/24)
//
// where h is the hour of day of t. Intensity spans
// [MeanG−AmplitudeG, MeanG+AmplitudeG].
type Diurnal struct {
	MeanG      float64 // daily mean intensity, gCO2/kWh
	AmplitudeG float64 // half the peak-to-trough swing, gCO2/kWh
	CleanHour  float64 // hour of day [0,24) of minimum intensity

	// RenewableMin / RenewableMax bound the renewable fraction; the
	// fraction peaks at CleanHour. Zero values mean "no renewable
	// model" (fraction 0).
	RenewableMin float64
	RenewableMax float64
}

// Validate reports a descriptive error for unusable parameters.
func (d Diurnal) Validate() error {
	switch {
	case d.MeanG <= 0:
		return fmt.Errorf("carbon: diurnal mean %v must be positive", d.MeanG)
	case d.AmplitudeG < 0 || d.AmplitudeG > d.MeanG:
		return fmt.Errorf("carbon: diurnal amplitude %v outside [0, mean=%v]", d.AmplitudeG, d.MeanG)
	case d.CleanHour < 0 || d.CleanHour >= 24:
		return fmt.Errorf("carbon: clean hour %v outside [0,24)", d.CleanHour)
	case d.RenewableMin < 0 || d.RenewableMax > 1 || d.RenewableMin > d.RenewableMax:
		return fmt.Errorf("carbon: renewable bounds [%v,%v] invalid", d.RenewableMin, d.RenewableMax)
	}
	return nil
}

// Name implements Signal.
func (d Diurnal) Name() string { return "diurnal" }

// phase returns the cosine argument for time t.
func (d Diurnal) phase(t float64) float64 {
	return 2 * math.Pi * (t/DaySeconds - d.CleanHour/24)
}

// IntensityAt implements Signal.
func (d Diurnal) IntensityAt(t float64) float64 {
	return d.MeanG - d.AmplitudeG*math.Cos(d.phase(t))
}

// RenewableAt implements Signal: the fraction follows the inverse
// shape of the intensity, peaking at CleanHour.
func (d Diurnal) RenewableAt(t float64) float64 {
	mid := (d.RenewableMin + d.RenewableMax) / 2
	amp := (d.RenewableMax - d.RenewableMin) / 2
	return mid + amp*math.Cos(d.phase(t))
}

// MeanIntensity implements Signal with the analytic integral of the
// sinusoid, so carbon accounting over a diurnal grid stays exact.
func (d Diurnal) MeanIntensity(t0, t1 float64) float64 {
	if t1 <= t0 {
		return d.IntensityAt(t0)
	}
	// ∫cos(φ(t))dt over [t0,t1] = (T/2π)·[sin φ(t1) − sin φ(t0)]
	// with T the day length.
	integral := DaySeconds / (2 * math.Pi) * (math.Sin(d.phase(t1)) - math.Sin(d.phase(t0)))
	return d.MeanG - d.AmplitudeG*integral/(t1-t0)
}

// hourOfDay maps an absolute time to [0,24).
func hourOfDay(t float64) float64 {
	h := math.Mod(t/3600, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// meanPiecewise averages intensityAt over [t0,t1] for a signal that is
// constant between consecutive breakpoints. breakpoints must be the
// strictly-inside-the-interval change times, ascending.
func meanPiecewise(intensityAt func(float64) float64, breakpoints []float64, t0, t1 float64) float64 {
	if t1 <= t0 {
		return intensityAt(t0)
	}
	sum := 0.0
	last := t0
	for _, b := range breakpoints {
		if b <= last || b >= t1 {
			continue
		}
		sum += intensityAt(last) * (b - last)
		last = b
	}
	sum += intensityAt(last) * (t1 - last)
	return sum / (t1 - t0)
}
