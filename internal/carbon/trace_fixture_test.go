package carbon

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The testdata fixture is a 48-hour hourly intensity trace in the
// electricityMap/WattTime feed style: a solar-heavy grid, cleanest
// around 13:00, with realistic measurement wobble on top of the
// diurnal shape. The tests below are the ROADMAP's "ingest real grid
// traces and validate the diurnal model against them" follow-on.

func loadFixture(t *testing.T) *Trace {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "grid_hourly.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ParseTrace("grid-hourly", f)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGridFixtureParses(t *testing.T) {
	tr := loadFixture(t)
	points := tr.Points()
	if len(points) != 48 {
		t.Fatalf("fixture has %d points, want 48 hourly samples", len(points))
	}
	for i, p := range points {
		if p.T != float64(i)*3600 {
			t.Errorf("point %d at %v s, want hourly grid", i, p.T)
		}
		if p.G <= 0 || p.G > 700 {
			t.Errorf("hour %d intensity %v outside a plausible grid range", i, p.G)
		}
		if p.R < 0 || p.R > 1 {
			t.Errorf("hour %d renewable fraction %v outside [0,1]", i, p.R)
		}
	}
}

// TestGridFixtureRoundTrips: WriteTrace → ParseTrace reproduces the
// identical samples.
func TestGridFixtureRoundTrips(t *testing.T) {
	tr := loadFixture(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace("grid-hourly", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Points(), back.Points()) {
		t.Error("round-tripped trace diverges from the fixture")
	}
}

// TestDiurnalModelTracksGridFixture: the analytic diurnal model with
// the fixture's nominal parameters stays inside a measurement-noise
// band of the recorded trace, hour for hour — the sanity check that
// the simulator's synthetic grids stand in for real feeds.
func TestDiurnalModelTracksGridFixture(t *testing.T) {
	tr := loadFixture(t)
	model := Diurnal{MeanG: 300, AmplitudeG: 250, CleanHour: 13,
		RenewableMin: 0.05, RenewableMax: 0.8}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	const bandG = 50 // generous bound on the fixture's wobble (max ≈ 37)
	for h := 0; h < 48; h++ {
		at := float64(h) * 3600
		got, want := tr.IntensityAt(at), model.IntensityAt(at)
		if math.Abs(got-want) > bandG {
			t.Errorf("hour %d: trace %.1f g/kWh departs from diurnal %.1f by more than %v", h, got, want, bandG)
		}
	}
	// The long-run means agree within a few percent: the wobble is
	// noise, not bias.
	traceMean := tr.MeanIntensity(0, 48*3600)
	modelMean := model.MeanIntensity(0, 48*3600)
	if math.Abs(traceMean-modelMean) > 0.05*modelMean {
		t.Errorf("trace mean %.1f departs from diurnal mean %.1f by more than 5%%", traceMean, modelMean)
	}
	// And the trace's cleanest hour lands where the model says the
	// sun does (13:00 ± 2 h on each day).
	for day := 0; day < 2; day++ {
		minH, minG := -1, math.Inf(1)
		for h := 0; h < 24; h++ {
			if g := tr.IntensityAt(float64(day*24+h) * 3600); g < minG {
				minG, minH = g, h
			}
		}
		if minH < 11 || minH > 15 {
			t.Errorf("day %d cleanest hour %d, want 13±2", day, minH)
		}
	}
}

// TestGridFixtureDrivesSiteProfile: the trace mounts as a site signal
// exactly like the synthetic models do.
func TestGridFixtureDrivesSiteProfile(t *testing.T) {
	tr := loadFixture(t)
	p := MustProfile(SiteProfile{Site: "recorded", Signal: tr})
	if g := p.IntensityAt("any-cluster", 13*3600); g > 150 {
		t.Errorf("recorded clean-hour intensity %v, want a clean grid", g)
	}
	if r := p.RenewableAt("any-cluster", 13*3600); r < 0.5 {
		t.Errorf("recorded clean-hour renewable fraction %v, want solar-heavy", r)
	}
}
