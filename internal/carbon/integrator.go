package carbon

import "fmt"

// Integrator turns a node's exact piecewise-constant power signal into
// cumulative grams of CO2. Simulation code calls Advance with the draw
// that held since the previous call — the same contract as
// power.Accumulator — and the integrator weights each interval by the
// signal's exact mean intensity over it, so the result is exact for
// piecewise-constant power against any Signal with an exact
// MeanIntensity.
type Integrator struct {
	site  SiteProfile
	lastT float64
	grams float64
}

// NewIntegrator starts integrating at time t0 against a site's grid.
func NewIntegrator(site SiteProfile, t0 float64) (*Integrator, error) {
	if err := site.Validate(); err != nil {
		return nil, err
	}
	return &Integrator{site: site, lastT: t0}, nil
}

// Advance accounts emissions for the interval [lastT, t] at draw w
// (watts), then moves the cursor to t. Advancing backwards panics: it
// is always a simulation bug, mirroring power.Accumulator.
func (in *Integrator) Advance(t float64, w float64) {
	if t < in.lastT {
		panic(fmt.Sprintf("carbon: integrator moved backwards: %.3f -> %.3f", in.lastT, t))
	}
	joules := w * (t - in.lastT) * in.site.pue()
	in.grams += joules / JoulesPerKWh * in.site.Signal.MeanIntensity(in.lastT, t)
	in.lastT = t
}

// Grams returns the accumulated emissions.
func (in *Integrator) Grams() float64 { return in.grams }

// LastTime returns the integration cursor.
func (in *Integrator) LastTime() float64 { return in.lastT }

// Site returns the profile being integrated against.
func (in *Integrator) Site() SiteProfile { return in.site }

// Grams converts an energy amount drawn entirely within [t0, t1] at a
// site into grams of CO2 — the one-shot form of the integrator, used
// to attribute per-task emissions from task records.
func Grams(site SiteProfile, joules, t0, t1 float64) float64 {
	return joules * site.pue() / JoulesPerKWh * site.Signal.MeanIntensity(t0, t1)
}
