package carbon

import (
	"math"
	"strings"
	"testing"
	"time"

	"greensched/internal/forecast"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestConstantSignal(t *testing.T) {
	c := Constant{G: 300, R: 0.2}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.IntensityAt(0) != 300 || c.IntensityAt(1e6) != 300 {
		t.Error("constant intensity must not vary")
	}
	if c.MeanIntensity(0, 86400) != 300 {
		t.Error("constant mean must equal the level")
	}
	if c.RenewableAt(42) != 0.2 {
		t.Error("constant renewable fraction wrong")
	}
	if (Constant{G: -1}).Validate() == nil {
		t.Error("negative intensity must be rejected")
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{MeanG: 300, AmplitudeG: 200, CleanHour: 13, RenewableMin: 0.1, RenewableMax: 0.7}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cleanest at 13:00, dirtiest 12 hours away.
	almost(t, d.IntensityAt(13*3600), 100, 1e-9, "intensity at clean hour")
	almost(t, d.IntensityAt(1*3600), 500, 1e-9, "intensity at dirty hour")
	// Renewables peak when the grid is cleanest.
	almost(t, d.RenewableAt(13*3600), 0.7, 1e-9, "renewable at clean hour")
	almost(t, d.RenewableAt(1*3600), 0.1, 1e-9, "renewable at dirty hour")
	// Same hour next day: identical.
	almost(t, d.IntensityAt(13*3600+DaySeconds), 100, 1e-9, "period")
}

func TestDiurnalMeanIntensityAnalytic(t *testing.T) {
	d := Diurnal{MeanG: 320, AmplitudeG: 180, CleanHour: 14}
	// Full-day mean must be the configured mean.
	almost(t, d.MeanIntensity(0, DaySeconds), 320, 1e-9, "full-day mean")
	// Arbitrary window: compare against fine numeric integration.
	t0, t1 := 5*3600.0, 19*3600.0
	sum := 0.0
	const n = 200000
	dt := (t1 - t0) / n
	for i := 0; i < n; i++ {
		sum += d.IntensityAt(t0+(float64(i)+0.5)*dt) * dt
	}
	almost(t, d.MeanIntensity(t0, t1), sum/(t1-t0), 1e-4, "window mean")
	// Degenerate interval falls back to the point value.
	almost(t, d.MeanIntensity(t0, t0), d.IntensityAt(t0), 1e-9, "empty interval")
}

func TestDiurnalValidate(t *testing.T) {
	cases := []Diurnal{
		{MeanG: 0, AmplitudeG: 0},
		{MeanG: 100, AmplitudeG: 150},
		{MeanG: 100, AmplitudeG: 50, CleanHour: 24},
		{MeanG: 100, AmplitudeG: 50, RenewableMin: 0.8, RenewableMax: 0.2},
	}
	for i, d := range cases {
		if d.Validate() == nil {
			t.Errorf("case %d: %+v must be rejected", i, d)
		}
	}
}

func TestTraceLookupAndMean(t *testing.T) {
	tr, err := NewTrace("test", []Point{
		{T: 0, G: 100, R: 0.5},
		{T: 100, G: 300},
		{T: 200, G: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := tr.IntensityAt(-50); g != 100 {
		t.Errorf("before first point: %v, want first value 100", g)
	}
	if g := tr.IntensityAt(150); g != 300 {
		t.Errorf("mid-trace: %v, want 300", g)
	}
	if g := tr.IntensityAt(1e6); g != 200 {
		t.Errorf("after last point: %v, want 200", g)
	}
	if r := tr.RenewableAt(50); r != 0.5 {
		t.Errorf("renewable: %v, want 0.5", r)
	}
	// [50, 250): 50s@100 + 100s@300 + 50s@200 = 5000+30000+10000 over 200s.
	almost(t, tr.MeanIntensity(50, 250), 225, 1e-9, "step-weighted mean")
}

func TestScheduleFromTariff(t *testing.T) {
	s, err := FromTariff(forecast.PaperTariff(), 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Regular 08-22h cost 1.0 → 500; off-peak-2 02-08h cost 0.5 → 300.
	almost(t, s.IntensityAt(12*3600), 500, 1e-9, "regular hours")
	almost(t, s.IntensityAt(4*3600), 300, 1e-9, "off-peak-2 hours")
	// Off-peak-1 wraps midnight: 23h and 1h both cost 0.8 → 420.
	almost(t, s.IntensityAt(23*3600), 420, 1e-9, "off-peak-1 before midnight")
	almost(t, s.IntensityAt(25*3600), 420, 1e-9, "off-peak-1 after midnight (next day)")
	// Renewable fraction mirrors 1−cost.
	almost(t, s.RenewableAt(4*3600), 0.5, 1e-9, "renewable off-peak-2")
}

func TestScheduleMeanIntensity(t *testing.T) {
	s, err := NewSchedule("steps", []Window{
		{StartHour: 0, EndHour: 12, G: 100},
		{StartHour: 12, EndHour: 24, G: 300},
	}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, s.MeanIntensity(0, DaySeconds), 200, 1e-9, "full-day mean")
	// 06:00→18:00: 6h@100 + 6h@300.
	almost(t, s.MeanIntensity(6*3600, 18*3600), 200, 1e-9, "half-shifted mean")
	// Window spanning two days: 18:00 day0 → 06:00 day1 = 6h@300 + 6h@100.
	almost(t, s.MeanIntensity(18*3600, DaySeconds+6*3600), 200, 1e-9, "cross-midnight mean")
	// Pure morning window.
	almost(t, s.MeanIntensity(2*3600, 8*3600), 100, 1e-9, "morning mean")
}

func TestProfileRoutesClustersToSites(t *testing.T) {
	p := MustProfile(SiteProfile{Site: "dirty", Signal: Constant{G: 500}})
	if err := p.SetCluster("taurus", SiteProfile{Site: "clean", Signal: Constant{G: 50}, PUE: 1.2}); err != nil {
		t.Fatal(err)
	}
	if g := p.IntensityAt("taurus", 0); g != 50 {
		t.Errorf("mapped cluster intensity %v, want 50", g)
	}
	if g := p.IntensityAt("orion", 0); g != 500 {
		t.Errorf("default cluster intensity %v, want 500", g)
	}
	sites := p.Sites()
	if len(sites) != 2 || sites[0] != "clean" || sites[1] != "dirty" {
		t.Errorf("sites = %v", sites)
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := NewProfile(SiteProfile{Site: "x"}); err == nil {
		t.Error("profile without signal must be rejected")
	}
	p := MustProfile(SiteProfile{Site: "d", Signal: Constant{G: 100}})
	if err := p.SetCluster("c", SiteProfile{Site: "bad", Signal: Constant{}, PUE: 0.5}); err == nil {
		t.Error("PUE between 0 and 1 must be rejected")
	}
}

func TestIntegratorExactGrams(t *testing.T) {
	// 1000 W for one hour at a constant 300 g/kWh = 1 kWh × 300 g.
	in, err := NewIntegrator(SiteProfile{Site: "s", Signal: Constant{G: 300}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(3600, 1000)
	almost(t, in.Grams(), 300, 1e-9, "constant-grid grams")

	// PUE multiplies the facility energy behind the same IT draw.
	in2, _ := NewIntegrator(SiteProfile{Site: "s", Signal: Constant{G: 300}, PUE: 1.5}, 0)
	in2.Advance(3600, 1000)
	almost(t, in2.Grams(), 450, 1e-9, "PUE-scaled grams")
}

func TestIntegratorPiecewiseAgainstSteps(t *testing.T) {
	tr, err := NewTrace("g", []Point{{T: 0, G: 100}, {T: 1800, G: 500}})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIntegrator(SiteProfile{Site: "s", Signal: tr}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One hour at 2000 W spanning the step: 1 kWh@100 + 1 kWh@500... no:
	// 2000 W × 1800 s = 1 kWh per half hour.
	in.Advance(3600, 2000)
	almost(t, in.Grams(), 100+500, 1e-9, "step-spanning grams")

	defer func() {
		if recover() == nil {
			t.Error("backwards Advance must panic")
		}
	}()
	in.Advance(1000, 1)
}

func TestGramsOneShot(t *testing.T) {
	site := SiteProfile{Site: "s", Signal: Constant{G: 250}}
	almost(t, Grams(site, JoulesPerKWh, 0, 60), 250, 1e-9, "one-shot grams")
}

func TestParseTraceDialect(t *testing.T) {
	in := `# seconds,gco2_per_kwh[,renewable_fraction]

0,480,0.05
 3600 , 250 , 0.55
7200,120
`
	tr, err := ParseTrace("grid", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Points()); got != 3 {
		t.Fatalf("parsed %d points, want 3", got)
	}
	if g := tr.IntensityAt(3600); g != 250 {
		t.Errorf("intensity at 3600 = %v, want 250", g)
	}
	if r := tr.RenewableAt(3600); r != 0.55 {
		t.Errorf("renewable at 3600 = %v, want 0.55", r)
	}
	if r := tr.RenewableAt(7200); r != 0 {
		t.Errorf("omitted renewable column must default to 0, got %v", r)
	}
}

func TestParseTraceSortsOutOfOrderRows(t *testing.T) {
	tr, err := ParseTrace("", strings.NewReader("3600,300\n0,100\n"))
	if err != nil {
		t.Fatal(err)
	}
	pts := tr.Points()
	if pts[0].T != 0 || pts[1].T != 3600 {
		t.Errorf("points not sorted: %+v", pts)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"field count":        "1,2,3,4\n",
		"bad time":           "abc,100\n",
		"bad intensity":      "0,xyz\n",
		"bad renewable":      "0,100,huh\n",
		"negative intensity": "0,-5\n",
		"renewable range":    "0,100,1.5\n",
		"duplicate times":    "0,100\n0,200\n",
		"empty":              "# only a comment\n",
	}
	for name, in := range cases {
		if _, err := ParseTrace("t", strings.NewReader(in)); err == nil {
			t.Errorf("%s: %q must fail to parse", name, in)
		}
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	orig, err := NewTrace("rt", []Point{{T: 0, G: 100, R: 0.3}, {T: 60, G: 200}})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTrace(&b, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace("rt", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, b.String())
	}
	if got, want := back.Points(), orig.Points(); len(got) != len(want) ||
		got[0] != want[0] || got[1] != want[1] {
		t.Errorf("round trip mismatch: %+v vs %+v", got, want)
	}
}

func TestPlanRecords(t *testing.T) {
	d := Diurnal{MeanG: 300, AmplitudeG: 200, CleanHour: 13}
	recs, err := PlanRecords(d, 0, DaySeconds, 3600, 10, 22, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 12 {
		t.Fatalf("diurnal day yielded only %d records", len(recs))
	}
	var minG, maxG = math.Inf(1), math.Inf(-1)
	for i, r := range recs {
		if r.Carbon <= 0 {
			t.Fatalf("record %d has no carbon intensity", i)
		}
		minG = math.Min(minG, r.Carbon)
		maxG = math.Max(maxG, r.Carbon)
		if i > 0 && recs[i].Value <= recs[i-1].Value {
			t.Fatalf("records not ascending at %d", i)
		}
	}
	if minG > 150 || maxG < 450 {
		t.Errorf("records span [%v,%v], want the diurnal swing represented", minG, maxG)
	}
	if _, err := PlanRecords(nil, 0, 1, 1, 0, 20, 1); err == nil {
		t.Error("nil signal must be rejected")
	}
	if _, err := PlanRecords(d, 10, 10, 1, 0, 20, 1); err == nil {
		t.Error("empty horizon must be rejected")
	}
}

func TestLiveAdapter(t *testing.T) {
	f := Live(Constant{G: 123}, time.Now().Add(-time.Hour))
	g, ok := f()
	if !ok || g != 123 {
		t.Errorf("live adapter = (%v,%v), want (123,true)", g, ok)
	}
	if _, ok := Live(nil, time.Now())(); ok {
		t.Error("nil signal must report ok=false")
	}
}
