// Package simtime provides a deterministic virtual clock and a
// discrete-event scheduler used by the simulation experiments.
//
// All simulated experiments in this repository run on virtual time so
// that results are exactly reproducible: an event at t=2,336 s costs
// nothing to reach. The live middleware (package middleware) runs on a
// real clock; both share the Clock interface so the same scheduling
// code can be exercised in either mode.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, expressed as seconds since the
// start of the simulation. float64 seconds keep the arithmetic in the
// same units the paper uses (seconds, watts, joules).
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Common conversions.
func (t Time) Seconds() float64     { return float64(t) }
func (t Time) Add(d Duration) Time  { return t + Time(d) }
func (t Time) Sub(o Time) Duration  { return float64(t - o) }
func (t Time) Before(o Time) bool   { return t < o }
func (t Time) After(o Time) bool    { return t > o }
func (t Time) AsStd() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }
func FromStd(d time.Duration) Time  { return Time(d.Seconds()) }
func (t Time) String() string       { return fmt.Sprintf("t+%.1fs", float64(t)) }
func (t Time) Minutes() float64     { return float64(t) / 60 }
func Minutes(m float64) Time        { return Time(m * 60) }
func (t Time) Truncate(d Duration) Time {
	if d <= 0 {
		return t
	}
	return Time(math.Floor(float64(t)/d) * d)
}

// Clock abstracts "what time is it" so code can run against virtual or
// wall-clock time.
type Clock interface {
	// Now returns the current time.
	Now() Time
}

// Event is a scheduled callback. Events with equal times fire in the
// order they were scheduled (FIFO), which keeps simulations
// deterministic without relying on map iteration or heap tie-breaks.
// Front events (AtFront) form a separate class that fires before all
// normal events sharing the same time, regardless of scheduling order.
type Event struct {
	At   Time
	Name string // for tracing/tests; optional
	Fn   func(now Time)

	class uint8 // 0 = front, 1 = normal
	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e == nil || e.index == -1 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	if h[i].class != h[j].class {
		return h[i].class < h[j].class
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation driver. The zero value is
// ready to use. Engine is not safe for concurrent use; simulations are
// single-goroutine by design (determinism).
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	fired   uint64
}

// NewEngine returns an engine starting at t=0.
func NewEngine() *Engine { return &Engine{} }

// Now implements Clock.
func (e *Engine) Now() Time { return e.now }

// Fired returns how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (before Now) panics: it is always a simulation bug.
func (e *Engine) At(t Time, name string, fn func(now Time)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling %q at %v before now %v", name, t, e.now))
	}
	ev := &Event{At: t, Name: name, Fn: fn, class: 1, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// AtFront schedules fn at absolute time t in the front class: among
// events sharing the same virtual time it fires before every normal
// event, no matter when either was scheduled. The event-heap sim
// kernel uses this for its arrival cursor, which must observe the same
// ordering as the seed kernel's setup-time arrival events (arrivals
// before crashes, retries and finishes at the same instant). Front
// events scheduled for the same time keep FIFO order among themselves.
func (e *Engine) AtFront(t Time, name string, fn func(now Time)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling %q at %v before now %v", name, t, e.now))
	}
	ev := &Event{At: t, Name: name, Fn: fn, class: 0, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Duration, name string, fn func(now Time)) *Event {
	return e.At(e.now.Add(d), name, fn)
}

// Cancel removes a scheduled event. Cancelling a fired or already
// cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step fires the earliest event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.At < e.now {
		panic("simtime: heap produced an event from the past")
	}
	e.now = ev.At
	e.fired++
	ev.Fn(e.now)
	return true
}

// Run fires events until the queue drains or the event budget is
// exhausted. A zero or negative budget means "no budget limit". It
// returns the number of events fired by this call and an error if the
// budget was hit (a runaway-simulation guard, not a normal outcome).
func (e *Engine) Run(budget uint64) (fired uint64, err error) {
	for e.Step() {
		fired++
		if budget > 0 && fired >= budget {
			if len(e.queue) > 0 {
				return fired, fmt.Errorf("simtime: event budget %d exhausted at %v with %d events pending", budget, e.now, len(e.queue))
			}
			return fired, nil
		}
	}
	return fired, nil
}

// RunUntil fires events with At <= deadline, leaving later events
// queued, and advances the clock to exactly deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Fixed is a Clock stuck at a constant time; handy in unit tests of
// components that only read the clock.
type Fixed Time

// Now implements Clock.
func (f Fixed) Now() Time { return Time(f) }
