package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	record := func(now Time) { got = append(got, now) }
	e.At(5, "c", record)
	e.At(1, "a", record)
	e.At(3, "b", record)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []Time{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if e.Now() != 5 {
		t.Errorf("Now() after run = %v, want 5", e.Now())
	}
}

func TestEqualTimesFireFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, "tie", func(Time) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending schedule order", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, "first", func(now Time) {
		e.After(5, "second", func(now Time) { at = now })
	})
	e.Run(0)
	if at != 15 {
		t.Fatalf("relative event fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, "x", func(Time) {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, "past", func(Time) {})
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(3, "x", func(Time) { fired = true })
	e.Cancel(ev)
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after cancel")
	}
	// Double-cancel and cancel-nil must be no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []string
	a := e.At(1, "a", func(Time) { got = append(got, "a") })
	e.At(2, "b", func(Time) { got = append(got, "b") })
	c := e.At(3, "c", func(Time) { got = append(got, "c") })
	e.Cancel(a)
	e.Cancel(c)
	e.Run(0)
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("got %v, want [b]", got)
	}
}

func TestRunBudget(t *testing.T) {
	e := NewEngine()
	// A self-perpetuating event chain that never terminates.
	var loop func(now Time)
	loop = func(now Time) { e.After(1, "loop", loop) }
	e.After(1, "loop", loop)
	fired, err := e.Run(100)
	if err == nil {
		t.Fatal("expected budget-exhausted error")
	}
	if fired != 100 {
		t.Fatalf("fired = %d, want 100", fired)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{1, 2, 3, 10, 20} {
		at := at
		e.At(at, "x", func(now Time) { got = append(got, now) })
	}
	e.RunUntil(5)
	if len(got) != 3 {
		t.Fatalf("fired %d events by t=5, want 3", len(got))
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v after RunUntil(5), want 5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(25)
	if len(got) != 5 {
		t.Fatalf("fired %d events total, want 5", len(got))
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Minutes(2)
	if tm != 120 {
		t.Fatalf("Minutes(2) = %v, want 120", tm)
	}
	if tm.Minutes() != 2 {
		t.Fatalf("Minutes() = %v, want 2", tm.Minutes())
	}
	if got := Time(7.9).Truncate(2); got != 6 {
		t.Fatalf("Truncate = %v, want 6", got)
	}
	if got := Time(5).Add(2.5); got != 7.5 {
		t.Fatalf("Add = %v, want 7.5", got)
	}
	if got := Time(5).Sub(2); got != 3 {
		t.Fatalf("Sub = %v, want 3", got)
	}
	if !Time(1).Before(2) || !Time(2).After(1) {
		t.Fatal("Before/After comparisons wrong")
	}
	if FromStd(1500*time.Millisecond) != 1.5 {
		t.Fatal("FromStd conversion wrong")
	}
	if Time(1.5).AsStd() != 1500*time.Millisecond {
		t.Fatal("AsStd conversion wrong")
	}
	if Fixed(42).Now() != 42 {
		t.Fatal("Fixed clock wrong")
	}
	if s := Time(1.25).String(); s != "t+1.2s" {
		t.Fatalf("String() = %q", s)
	}
}

// Property: for any random set of event times, the engine fires them in
// non-decreasing time order and ends with Now() at the max.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, "p", func(now Time) { fired = append(fired, now) })
		}
		e.Run(0)
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		max := fired[len(fired)-1]
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never affects the relative order
// of survivors.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 50
		type rec struct {
			ev   *Event
			at   Time
			keep bool
		}
		recs := make([]*rec, n)
		var fired []Time
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(100))
			r := &rec{at: at, keep: rng.Intn(2) == 0}
			r.ev = e.At(at, "p", func(now Time) { fired = append(fired, now) })
			recs[i] = r
		}
		want := 0
		for _, r := range recs {
			if !r.keep {
				e.Cancel(r.ev)
			} else {
				want++
			}
		}
		e.Run(0)
		if len(fired) != want {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(fired), want)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("trial %d: fired out of order: %v", trial, fired)
		}
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), "b", func(Time) {})
		}
		e.Run(0)
	}
}

func TestAtFrontFiresBeforeNormalEventsAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []string
	// Normal events scheduled first (lower seq) would normally win the
	// tie; the front event must still fire ahead of them.
	e.At(5, "normal-early", func(Time) { order = append(order, "normal-early") })
	e.At(5, "normal-late", func(Time) { order = append(order, "normal-late") })
	e.AtFront(5, "front-b", func(Time) { order = append(order, "front-b") })
	e.AtFront(5, "front-a", func(Time) { order = append(order, "front-a") })
	e.At(3, "before", func(Time) { order = append(order, "before") })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"before", "front-b", "front-a", "normal-early", "normal-late"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestAtFrontPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, "x", func(Time) {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling a front event in the past")
		}
	}()
	e.AtFront(5, "late", func(Time) {})
}
