package power

import "math"

// MovingAvg is a fixed-window moving average over float64 observations.
// It backs the paper's dynamic estimation approach: "the energy
// consumed by a server while computing a number of past requests is
// used to compute its average power consumption ... a value based on
// recent activity rather than on an initial benchmark" (§III-A).
//
// The zero value is unusable; construct with NewMovingAvg. A window of
// 0 means unbounded (plain cumulative mean).
type MovingAvg struct {
	window int
	buf    []float64
	next   int
	full   bool
	sum    float64
	count  uint64 // total observations ever, incl. evicted
}

// NewMovingAvg returns a moving average over the last window
// observations (0 = all observations).
func NewMovingAvg(window int) *MovingAvg {
	if window < 0 {
		window = 0
	}
	m := &MovingAvg{window: window}
	if window > 0 {
		m.buf = make([]float64, window)
	}
	return m
}

// Add records an observation.
func (m *MovingAvg) Add(v float64) {
	m.count++
	if m.window == 0 {
		m.sum += v
		return
	}
	if m.full {
		m.sum -= m.buf[m.next]
	}
	m.buf[m.next] = v
	m.sum += v
	m.next++
	if m.next == m.window {
		m.next = 0
		m.full = true
	}
}

// N returns the number of observations currently inside the window.
func (m *MovingAvg) N() int {
	if m.window == 0 {
		if m.count > uint64(math.MaxInt32) {
			return math.MaxInt32
		}
		return int(m.count)
	}
	if m.full {
		return m.window
	}
	return m.next
}

// Count returns the total number of observations ever recorded,
// including ones evicted from the window.
func (m *MovingAvg) Count() uint64 { return m.count }

// Mean returns the windowed mean, or 0 with ok=false before any
// observation arrives.
func (m *MovingAvg) Mean() (v float64, ok bool) {
	n := m.N()
	if n == 0 {
		return 0, false
	}
	return m.sum / float64(n), true
}

// Estimator fuses per-request energy measurements into the two numbers
// the GreenPerf scheduler needs for one server: average active power
// (watts) and sustained performance (flop/s). Confidence grows with the
// number of completed requests; schedulers use it to drive the
// exploration ("learning") phase visible in the paper's Figures 2-3.
type Estimator struct {
	powerW *MovingAvg
	flops  *MovingAvg
}

// NewEstimator returns an estimator averaging over the last window
// completed requests (the paper averages "over more than 6,000
// measurements"; per-request averaging with a window of ~64 requests
// reproduces the same recency behaviour at request granularity).
func NewEstimator(window int) *Estimator {
	return &Estimator{powerW: NewMovingAvg(window), flops: NewMovingAvg(window)}
}

// ObserveRequest folds in one completed request: the mean power drawn
// by the server over the request's execution, the amount of work in
// flops, and the execution seconds (queue wait excluded — waiting does
// not inform the node's speed).
func (e *Estimator) ObserveRequest(meanPower Watts, workFlops, execSeconds float64) {
	if execSeconds <= 0 {
		return
	}
	if meanPower > 0 {
		e.powerW.Add(meanPower)
	}
	e.flops.Add(workFlops / execSeconds)
}

// Power returns the learned average active power.
func (e *Estimator) Power() (Watts, bool) { return e.powerW.Mean() }

// Flops returns the learned sustained performance in flop/s.
func (e *Estimator) Flops() (float64, bool) { return e.flops.Mean() }

// Requests returns how many requests informed the estimate (power side
// may lag if meters dropped out).
func (e *Estimator) Requests() uint64 { return e.flops.Count() }

// Known reports whether both dimensions have at least one observation;
// schedulers rank unknown servers first to learn them.
func (e *Estimator) Known() bool {
	_, p := e.powerW.Mean()
	_, f := e.flops.Mean()
	return p && f
}

// GreenPerf returns the paper's ranking ratio power/performance
// (W per flop/s; lower is better). ok is false until both inputs are
// known.
func (e *Estimator) GreenPerf() (ratio float64, ok bool) {
	p, okP := e.powerW.Mean()
	f, okF := e.flops.Mean()
	if !okP || !okF || f <= 0 {
		return 0, false
	}
	return p / f, true
}
