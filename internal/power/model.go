// Package power models node power consumption and the energy-sensing
// infrastructure the paper relies on.
//
// The paper measures each node with an external Omegawatt wattmeter at
// 1 Hz and derives a node's power as the average over past
// measurements (more than 6,000 samples in §IV). Here the wattmeter is
// emulated: it samples a PowerModel on a virtual-time grid, optionally
// with measurement noise and sample dropouts, and feeds the same
// moving-average estimator the dynamic GreenPerf approach uses.
package power

import (
	"fmt"
	"math"
)

// Watts is instantaneous power draw.
type Watts = float64

// Joules is accumulated energy.
type Joules = float64

// State is the coarse operating state of a node. Power draw depends on
// it (Eq. 5 in the paper distinguishes active servers from inactive
// servers that must boot first).
type State int

const (
	// Off means the node draws only residual (PSU/BMC) power.
	Off State = iota
	// Booting means the node is powering up; it draws BootW and
	// cannot execute tasks.
	Booting
	// On means the node is available; draw interpolates between
	// idle and peak with utilization.
	On
)

func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case Booting:
		return "booting"
	case On:
		return "on"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Usable reports whether the node is executing or about to execute
// work: On now, or Booting toward On. Controllers count usable nodes
// as capacity already paid for (a booting node must not trigger a
// second wake-up).
func (s State) Usable() bool { return s == On || s == Booting }

// Model maps an operating point to instantaneous power draw.
type Model interface {
	// Power returns the draw for state s at utilization u in [0,1].
	// Utilization is ignored unless s == On.
	Power(s State, u float64) Watts
}

// LinearModel models non-energy-proportional servers with an
// activation step:
//
//	P(u) = Idle + Activation·[u > 0] + (Peak − Idle − Activation)·u
//
// The first busy core wakes the package/uncore domains and costs
// disproportionately (ActivationW); further cores add a linear
// increment up to PeakW. With ActivationW = 0 this degrades to the
// classic idle↔peak interpolation. The paper's related-work section
// notes resources are generally not energy proportional; this convex
// step is what makes load concentration (POWER policy) pay off against
// load spreading (RANDOM) on real GRID'5000 nodes.
type LinearModel struct {
	IdleW       Watts // draw at zero utilization, powered on
	PeakW       Watts // draw with all cores busy
	ActivationW Watts // extra draw as soon as any core is busy
	BootW       Watts // draw while booting
	OffW        Watts // residual draw while off (often ~0-10 W)
}

// Power implements Model. Utilization is clamped to [0,1].
func (m LinearModel) Power(s State, u float64) Watts {
	switch s {
	case Off:
		return m.OffW
	case Booting:
		return m.BootW
	default:
		if u <= 0 {
			return m.IdleW
		}
		if u > 1 {
			u = 1
		}
		return m.IdleW + m.ActivationW + (m.PeakW-m.IdleW-m.ActivationW)*u
	}
}

// Validate reports a descriptive error for physically meaningless
// parameters.
func (m LinearModel) Validate() error {
	switch {
	case m.IdleW < 0 || m.PeakW < 0 || m.BootW < 0 || m.OffW < 0 || m.ActivationW < 0:
		return fmt.Errorf("power: negative wattage in model %+v", m)
	case m.PeakW < m.IdleW+m.ActivationW:
		return fmt.Errorf("power: peak %.1fW below idle %.1fW + activation %.1fW", m.PeakW, m.IdleW, m.ActivationW)
	case m.OffW > m.IdleW:
		return fmt.Errorf("power: off draw %.1fW above idle %.1fW", m.OffW, m.IdleW)
	default:
		return nil
	}
}

// Accumulator integrates a piecewise-constant power signal into energy.
// Simulation code calls Advance with the power level that held since
// the previous call; the integral is exact for piecewise-constant
// signals (which is precisely what the DES produces).
type Accumulator struct {
	lastT  float64
	total  Joules
	moved  bool
	lastPW Watts
}

// NewAccumulator starts integrating at time t0 (seconds).
func NewAccumulator(t0 float64) *Accumulator {
	return &Accumulator{lastT: t0}
}

// Advance accounts energy for the interval [lastT, t] at draw w, then
// moves the cursor to t. Advancing backwards panics: it is always a
// simulation bug.
func (a *Accumulator) Advance(t float64, w Watts) {
	if t < a.lastT {
		panic(fmt.Sprintf("power: accumulator moved backwards: %.3f -> %.3f", a.lastT, t))
	}
	a.total += Joules(w * (t - a.lastT))
	a.lastT = t
	a.lastPW = w
	a.moved = true
}

// Total returns the accumulated energy in joules.
func (a *Accumulator) Total() Joules { return a.total }

// LastTime returns the integration cursor.
func (a *Accumulator) LastTime() float64 { return a.lastT }

// LastPower returns the draw supplied to the most recent Advance, or 0
// if Advance has not been called.
func (a *Accumulator) LastPower() Watts {
	if !a.moved {
		return 0
	}
	return a.lastPW
}

// Reset zeroes the accumulated total, keeping the cursor.
func (a *Accumulator) Reset() { a.total = 0 }

// MeanWatts returns total energy divided by a window length; it is the
// "average power consumption" the dynamic GreenPerf estimator uses.
// Returns 0 for non-positive windows.
func MeanWatts(e Joules, window float64) Watts {
	if window <= 0 {
		return 0
	}
	return e / window
}

// EDP returns the energy-delay product, one of the aggregate
// efficiency metrics Hsu et al. (ref [19]) compare; the paper's score
// at P=0 degenerates to it.
func EDP(e Joules, seconds float64) float64 { return e * seconds }

// PerfPerWatt returns performance-per-watt (FLOPS/W), the
// "performance-power ratio" ref [19] concludes is the appropriate
// efficiency representation. GreenPerf is its reciprocal ordering.
func PerfPerWatt(flops float64, w Watts) float64 {
	if w <= 0 {
		return math.Inf(1)
	}
	return flops / w
}
