package power

import (
	"math"
	"testing"
)

// Coverage for the corners the scheduler leans on when readings go
// missing: empty meter windows, out-of-order observation intervals,
// and the estimator's zero-flops GreenPerf path. Plus the Source
// helpers the powerd sidecar plugs through.

func TestWattmeterMeanWindowEmptyMeter(t *testing.T) {
	m := NewWattmeter(0, 1)
	if w, n := m.MeanWindow(0, 100); w != 0 || n != 0 {
		t.Errorf("empty meter MeanWindow = %v, %d; want 0, 0", w, n)
	}
	if w, n := m.MeanLast(5); w != 0 || n != 0 {
		t.Errorf("empty meter MeanLast = %v, %d; want 0, 0", w, n)
	}
}

func TestWattmeterMeanWindowInverted(t *testing.T) {
	m := NewWattmeter(0, 1)
	m.Observe(0, 5, 100)
	if w, n := m.MeanWindow(4, 2); w != 0 || n != 0 {
		t.Errorf("inverted window (to < from) = %v, %d; want 0, 0", w, n)
	}
	// A window that brackets no grid point is empty, not an error.
	if w, n := m.MeanWindow(1.2, 1.8); w != 0 || n != 0 {
		t.Errorf("between-samples window = %v, %d; want 0, 0", w, n)
	}
}

func TestWattmeterMeanLastNonPositive(t *testing.T) {
	m := NewWattmeter(0, 1)
	m.Observe(0, 3, 50)
	if w, n := m.MeanLast(0); w != 0 || n != 0 {
		t.Errorf("MeanLast(0) = %v, %d; want 0, 0", w, n)
	}
	if w, n := m.MeanLast(-1); w != 0 || n != 0 {
		t.Errorf("MeanLast(-1) = %v, %d; want 0, 0", w, n)
	}
}

// TestWattmeterOutOfOrderIntervals: a later Observe whose interval
// starts before the grid's high-water mark must not emit duplicate or
// time-reversed samples — the trace stays strictly increasing.
func TestWattmeterOutOfOrderIntervals(t *testing.T) {
	m := NewWattmeter(0, 1)
	m.Observe(0, 5, 100)
	got := m.Len()
	// Entirely within already-covered time: nothing new.
	m.Observe(2, 4, 200)
	if m.Len() != got {
		t.Fatalf("fully-covered interval re-emitted samples: %d -> %d", got, m.Len())
	}
	// Overlapping the covered prefix: only the uncovered tail samples.
	m.Observe(3, 7, 200)
	last := math.Inf(-1)
	for _, s := range m.Samples() {
		if s.T <= last {
			t.Fatalf("samples out of order or duplicated at T=%v (prev %v)", s.T, last)
		}
		last = s.T
	}
	if w, n := m.MeanWindow(5, 7); n == 0 || w != 200 {
		t.Errorf("uncovered tail not observed: mean %v over %d samples", w, n)
	}
}

// TestEstimatorGreenPerfZeroFlops: a node that completes requests with
// no measurable work has a defined power mean but an undefined
// W-per-flop ratio — GreenPerf must report unknown, not divide by zero.
func TestEstimatorGreenPerfZeroFlops(t *testing.T) {
	e := NewEstimator(8)
	e.ObserveRequest(200, 0, 2)
	e.ObserveRequest(210, 0, 1)
	if p, ok := e.Power(); !ok || p != 205 {
		t.Fatalf("Power = %v, %v; want 205, true", p, ok)
	}
	if f, ok := e.Flops(); !ok || f != 0 {
		t.Fatalf("Flops = %v, %v; want 0, true", f, ok)
	}
	if r, ok := e.GreenPerf(); ok || r != 0 {
		t.Fatalf("GreenPerf with zero flops = %v, %v; want 0, false", r, ok)
	}
	// One real observation flips it to known.
	e.ObserveRequest(200, 1e9, 1)
	if _, ok := e.GreenPerf(); !ok {
		t.Fatal("GreenPerf still unknown after a non-zero-flops request")
	}
}

func TestMetricValue(t *testing.T) {
	metrics, values := []string{MetricUtil, MetricTime}, []float64{0.5, 42}
	if v, ok := MetricValue(metrics, values, MetricTime); !ok || v != 42 {
		t.Errorf("MetricValue(t) = %v, %v", v, ok)
	}
	if _, ok := MetricValue(metrics, values, "ghost"); ok {
		t.Error("unknown metric found")
	}
	// A name whose value slot is missing reports absent, not zero.
	if _, ok := MetricValue([]string{MetricUtil}, nil, MetricUtil); ok {
		t.Error("metric with no paired value reported present")
	}
	if _, ok := MetricValue(nil, nil, MetricUtil); ok {
		t.Error("empty slices reported a metric")
	}
}

func TestStaticSource(t *testing.T) {
	s := StaticSource{"lean": 80}
	if w, ok := s.NodePowerW("lean", nil, nil); !ok || w != 80 {
		t.Errorf("lean = %v, %v", w, ok)
	}
	if _, ok := s.NodePowerW("ghost", nil, nil); ok {
		t.Error("absent node reported a reading")
	}
}

func TestCurveSource(t *testing.T) {
	c := CurveSource{
		Nodes:   map[string]Model{"hungry": LinearModel{IdleW: 150, PeakW: 350}},
		Default: LinearModel{IdleW: 100, PeakW: 300},
	}
	for _, tc := range []struct {
		node string
		util float64
		want Watts
	}{
		{"other", 0, 100},    // default curve, idle
		{"other", 1, 300},    // default curve, flat out
		{"other", -3, 100},   // utilization clamped low
		{"other", 9, 300},    // utilization clamped high
		{"hungry", 0.5, 250}, // per-node curve wins
	} {
		w, ok := c.NodePowerW(tc.node, []string{MetricUtil}, []float64{tc.util})
		if !ok || w != tc.want {
			t.Errorf("%s@%v = %v, %v; want %v", tc.node, tc.util, w, ok, tc.want)
		}
	}
	// No util metric means idle.
	if w, _ := c.NodePowerW("other", nil, nil); w != 100 {
		t.Errorf("metric-less reading = %v, want idle 100", w)
	}
	// Nil Default: unknown nodes have no reading.
	bare := CurveSource{Nodes: map[string]Model{"a": LinearModel{IdleW: 1, PeakW: 2}}}
	if _, ok := bare.NodePowerW("b", nil, nil); ok {
		t.Error("nil-default curve served an unknown node")
	}
	if c.ModelName() != "curve" {
		t.Errorf("ModelName = %q", c.ModelName())
	}
}

func TestSourceFunc(t *testing.T) {
	var gotNode string
	f := SourceFunc(func(node string, _ []string, _ []float64) (Watts, bool) {
		gotNode = node
		return 7, true
	})
	if w, ok := f.NodePowerW("n", nil, nil); !ok || w != 7 || gotNode != "n" {
		t.Errorf("SourceFunc: %v, %v, node %q", w, ok, gotNode)
	}
}
