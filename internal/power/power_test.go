package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearModelStates(t *testing.T) {
	m := LinearModel{IdleW: 100, PeakW: 220, BootW: 180, OffW: 5}
	if got := m.Power(Off, 0.5); got != 5 {
		t.Errorf("Off = %v, want 5", got)
	}
	if got := m.Power(Booting, 0.5); got != 180 {
		t.Errorf("Booting = %v, want 180", got)
	}
	if got := m.Power(On, 0); got != 100 {
		t.Errorf("On@0 = %v, want 100", got)
	}
	if got := m.Power(On, 1); got != 220 {
		t.Errorf("On@1 = %v, want 220", got)
	}
	if got := m.Power(On, 0.5); got != 160 {
		t.Errorf("On@0.5 = %v, want 160", got)
	}
}

func TestLinearModelClampsUtilization(t *testing.T) {
	m := LinearModel{IdleW: 100, PeakW: 200}
	if got := m.Power(On, -3); got != 100 {
		t.Errorf("u<0 = %v, want idle", got)
	}
	if got := m.Power(On, 7); got != 200 {
		t.Errorf("u>1 = %v, want peak", got)
	}
}

func TestLinearModelValidate(t *testing.T) {
	cases := []struct {
		m    LinearModel
		ok   bool
		name string
	}{
		{LinearModel{IdleW: 100, PeakW: 200, BootW: 150, OffW: 5}, true, "good"},
		{LinearModel{IdleW: -1, PeakW: 200}, false, "negative idle"},
		{LinearModel{IdleW: 200, PeakW: 100}, false, "peak below idle"},
		{LinearModel{IdleW: 100, PeakW: 200, OffW: 150}, false, "off above idle"},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestStateString(t *testing.T) {
	if Off.String() != "off" || Booting.String() != "booting" || On.String() != "on" {
		t.Fatal("State strings wrong")
	}
	if State(9).String() != "State(9)" {
		t.Fatal("unknown state string wrong")
	}
}

func TestAccumulatorExactIntegration(t *testing.T) {
	a := NewAccumulator(0)
	a.Advance(10, 100) // 1000 J
	a.Advance(15, 200) // 1000 J
	a.Advance(15, 999) // zero-length interval adds nothing
	if got := a.Total(); got != 2000 {
		t.Fatalf("Total = %v, want 2000", got)
	}
	if a.LastTime() != 15 {
		t.Fatalf("LastTime = %v, want 15", a.LastTime())
	}
	if a.LastPower() != 999 {
		t.Fatalf("LastPower = %v, want 999", a.LastPower())
	}
	a.Reset()
	if a.Total() != 0 {
		t.Fatal("Reset did not zero total")
	}
}

func TestAccumulatorBackwardsPanics(t *testing.T) {
	a := NewAccumulator(10)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Advance did not panic")
		}
	}()
	a.Advance(5, 100)
}

func TestAccumulatorZeroBeforeAdvance(t *testing.T) {
	a := NewAccumulator(3)
	if a.LastPower() != 0 || a.Total() != 0 {
		t.Fatal("fresh accumulator not zeroed")
	}
}

// Property: integrating constant power w over any positive span equals
// w*span within float tolerance, independent of how the span is split.
func TestPropertyAccumulatorSplitInvariance(t *testing.T) {
	f := func(w uint16, cuts []uint8) bool {
		a1 := NewAccumulator(0)
		a1.Advance(100, float64(w))
		a2 := NewAccumulator(0)
		last := 0.0
		for _, c := range cuts {
			p := last + float64(c)/255.0*(100-last)
			a2.Advance(p, float64(w))
			last = p
		}
		a2.Advance(100, float64(w))
		return math.Abs(a1.Total()-a2.Total()) < 1e-6*math.Max(1, a1.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWattmeterSamplesAtPeriod(t *testing.T) {
	m := NewWattmeter(0, 1)
	m.Observe(0, 10, 150)
	// Grid points 0..9 inclusive of 0? First point: ceil(0/1)*1 = 0.
	if m.Len() != 10 {
		t.Fatalf("Len = %d, want 10", m.Len())
	}
	for i, s := range m.Samples() {
		if s.W != 150 {
			t.Fatalf("sample %d W = %v, want 150", i, s.W)
		}
	}
}

func TestWattmeterSplitObservationsNoDuplicates(t *testing.T) {
	m := NewWattmeter(0, 1)
	m.Observe(0, 3.5, 100)
	m.Observe(3.5, 7, 200)
	if m.Len() != 7 {
		t.Fatalf("Len = %d, want 7", m.Len())
	}
	wantW := []Watts{100, 100, 100, 100, 200, 200, 200}
	for i, s := range m.Samples() {
		if s.W != wantW[i] {
			t.Fatalf("sample %d = %+v, want W=%v", i, s, wantW[i])
		}
	}
}

func TestWattmeterMeanWindow(t *testing.T) {
	m := NewWattmeter(0, 1)
	m.Observe(0, 5, 100)
	m.Observe(5, 10, 300)
	mean, n := m.MeanWindow(0, 9.5)
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
	if mean != 200 {
		t.Fatalf("mean = %v, want 200", mean)
	}
	mean, n = m.MeanWindow(5, 9)
	if n != 5 || mean != 300 {
		t.Fatalf("window [5,9]: mean=%v n=%d, want 300, 5", mean, n)
	}
	if _, n := m.MeanWindow(100, 200); n != 0 {
		t.Fatal("empty window should report 0 samples")
	}
	if _, n := m.MeanWindow(9, 5); n != 0 {
		t.Fatal("inverted window should report 0 samples")
	}
}

func TestWattmeterMeanLast(t *testing.T) {
	m := NewWattmeter(0, 1)
	m.Observe(0, 4, 100)
	m.Observe(4, 8, 200)
	mean, n := m.MeanLast(4)
	if n != 4 || mean != 200 {
		t.Fatalf("MeanLast(4) = %v,%d want 200,4", mean, n)
	}
	mean, n = m.MeanLast(100)
	if n != 8 || mean != 150 {
		t.Fatalf("MeanLast(100) = %v,%d want 150,8", mean, n)
	}
	if _, n := m.MeanLast(0); n != 0 {
		t.Fatal("MeanLast(0) should report 0")
	}
}

func TestWattmeterRingEviction(t *testing.T) {
	m := NewWattmeter(10, 1)
	m.Observe(0, 100, 50)
	if m.Len() > 10 {
		t.Fatalf("ring exceeded capacity: %d", m.Len())
	}
	// The retained samples must be the newest ones.
	last := m.Samples()[m.Len()-1]
	if last.T != 99 {
		t.Fatalf("newest retained sample T = %v, want 99", last.T)
	}
}

func TestWattmeterDropout(t *testing.T) {
	m := NewWattmeter(0, 42)
	m.DropoutRate = 0.5
	m.Observe(0, 1000, 100)
	if m.Len() == 0 || m.Len() == 1000 {
		t.Fatalf("dropout rate 0.5 retained %d of 1000 samples", m.Len())
	}
	// Mean must still be exact (no noise).
	mean, _ := m.MeanLast(m.Len())
	if mean != 100 {
		t.Fatalf("dropout changed values: mean=%v", mean)
	}
}

func TestWattmeterNoiseBounded(t *testing.T) {
	m := NewWattmeter(0, 7)
	m.NoiseW = 10
	m.Observe(0, 500, 100)
	for _, s := range m.Samples() {
		if s.W < 90 || s.W > 110 {
			t.Fatalf("noisy sample %v outside ±10 of 100", s.W)
		}
	}
	mean, _ := m.MeanLast(m.Len())
	if math.Abs(mean-100) > 2 {
		t.Fatalf("noise is biased: mean=%v", mean)
	}
}

func TestWattmeterNegativeIntervalPanics(t *testing.T) {
	m := NewWattmeter(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative interval did not panic")
		}
	}()
	m.Observe(5, 1, 100)
}

func TestMovingAvgWindowed(t *testing.T) {
	m := NewMovingAvg(3)
	if _, ok := m.Mean(); ok {
		t.Fatal("empty mean should not be ok")
	}
	for _, v := range []float64{1, 2, 3} {
		m.Add(v)
	}
	if v, _ := m.Mean(); v != 2 {
		t.Fatalf("mean = %v, want 2", v)
	}
	m.Add(10) // evicts 1
	if v, _ := m.Mean(); v != 5 {
		t.Fatalf("mean after eviction = %v, want 5", v)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d, want 3", m.N())
	}
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
}

func TestMovingAvgUnbounded(t *testing.T) {
	m := NewMovingAvg(0)
	for i := 1; i <= 100; i++ {
		m.Add(float64(i))
	}
	if v, _ := m.Mean(); v != 50.5 {
		t.Fatalf("unbounded mean = %v, want 50.5", v)
	}
	if m.N() != 100 {
		t.Fatalf("N = %d, want 100", m.N())
	}
}

func TestMovingAvgNegativeWindowTreatedUnbounded(t *testing.T) {
	m := NewMovingAvg(-5)
	m.Add(2)
	m.Add(4)
	if v, _ := m.Mean(); v != 3 {
		t.Fatalf("mean = %v, want 3", v)
	}
}

// Property: a windowed mean always lies within [min,max] of the values
// currently in the window.
func TestPropertyMovingAvgBounded(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		m := NewMovingAvg(5)
		for _, v := range vals {
			m.Add(float64(v))
		}
		mean, ok := m.Mean()
		if !ok {
			return false
		}
		start := len(vals) - 5
		if start < 0 {
			start = 0
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals[start:] {
			lo = math.Min(lo, float64(v))
			hi = math.Max(hi, float64(v))
		}
		return mean >= lo-1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorLearnsPowerAndFlops(t *testing.T) {
	e := NewEstimator(8)
	if e.Known() {
		t.Fatal("fresh estimator should be unknown")
	}
	if _, ok := e.GreenPerf(); ok {
		t.Fatal("GreenPerf should be unavailable before observations")
	}
	// 10 requests: 200 W mean power, 1e9 flops in 2 s => 5e8 flop/s.
	for i := 0; i < 10; i++ {
		e.ObserveRequest(200, 1e9, 2)
	}
	p, ok := e.Power()
	if !ok || p != 200 {
		t.Fatalf("Power = %v,%v want 200,true", p, ok)
	}
	f, ok := e.Flops()
	if !ok || f != 5e8 {
		t.Fatalf("Flops = %v,%v want 5e8,true", f, ok)
	}
	gp, ok := e.GreenPerf()
	if !ok || math.Abs(gp-200/5e8) > 1e-18 {
		t.Fatalf("GreenPerf = %v,%v", gp, ok)
	}
	if e.Requests() != 10 {
		t.Fatalf("Requests = %d, want 10", e.Requests())
	}
}

func TestEstimatorIgnoresDegenerateObservations(t *testing.T) {
	e := NewEstimator(4)
	e.ObserveRequest(100, 1e9, 0) // zero exec time: ignored entirely
	e.ObserveRequest(-5, 1e9, 1)  // negative power: flops only
	e.ObserveRequest(0, 2e9, 1)   // zero power (meter dropout): flops only
	if _, ok := e.Power(); ok {
		t.Fatal("power should still be unknown")
	}
	f, ok := e.Flops()
	if !ok || f != 1.5e9 {
		t.Fatalf("Flops = %v,%v want 1.5e9,true", f, ok)
	}
	if e.Known() {
		t.Fatal("estimator should not be Known without power data")
	}
}

func TestEstimatorRecency(t *testing.T) {
	e := NewEstimator(4)
	for i := 0; i < 10; i++ {
		e.ObserveRequest(100, 1e9, 1)
	}
	// Node drifts hotter: window must forget the old regime.
	for i := 0; i < 4; i++ {
		e.ObserveRequest(300, 1e9, 1)
	}
	p, _ := e.Power()
	if p != 300 {
		t.Fatalf("windowed power = %v, want 300 after drift", p)
	}
}

func TestHelperMetrics(t *testing.T) {
	if MeanWatts(1000, 10) != 100 {
		t.Fatal("MeanWatts wrong")
	}
	if MeanWatts(1000, 0) != 0 {
		t.Fatal("MeanWatts zero window should be 0")
	}
	if EDP(100, 10) != 1000 {
		t.Fatal("EDP wrong")
	}
	if PerfPerWatt(1e9, 200) != 5e6 {
		t.Fatal("PerfPerWatt wrong")
	}
	if !math.IsInf(PerfPerWatt(1e9, 0), 1) {
		t.Fatal("PerfPerWatt with zero watts should be +Inf")
	}
}

func BenchmarkWattmeterObserve(b *testing.B) {
	m := NewWattmeter(8192, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := float64(i)
		m.Observe(t, t+1, 150)
	}
}

func BenchmarkEstimatorObserve(b *testing.B) {
	e := NewEstimator(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ObserveRequest(200, 1e9, 2)
	}
}
