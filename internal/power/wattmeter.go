package power

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sample is a single wattmeter reading at virtual time T (seconds
// since simulation start).
type Sample struct {
	T float64
	W Watts
}

// Wattmeter emulates the Omegawatt energy-sensing boxes of GRID'5000:
// it records the power draw of one node at a fixed period (1 s in the
// paper) and serves windowed queries over the trace.
//
// Faults: a DropoutRate in (0,1) makes the meter skip that fraction of
// samples (lost frames in the real deployment); NoiseW adds uniform
// ±NoiseW jitter. Both default to zero (ideal meter).
type Wattmeter struct {
	Period      float64 // sampling period in seconds; 1.0 matches the paper
	NoiseW      Watts   // uniform measurement noise amplitude
	DropoutRate float64 // probability a sample is lost
	MaxSamples  int     // ring capacity; 0 means unbounded

	rng     *rand.Rand
	samples []Sample
	lastT   float64
	started bool
}

// NewWattmeter returns a 1 Hz ideal meter with the given ring capacity
// (0 = unbounded) and deterministic fault source.
func NewWattmeter(capacity int, seed int64) *Wattmeter {
	return &Wattmeter{Period: 1, MaxSamples: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Observe records the node's (piecewise-constant) draw w over the
// interval [from, to). The meter lays its fixed sampling grid over the
// interval and appends one reading per grid point, honouring noise and
// dropout settings. Simulation code calls Observe on every power-state
// change, mirroring how the external meter sees the node continuously.
func (m *Wattmeter) Observe(from, to float64, w Watts) {
	if m.Period <= 0 {
		m.Period = 1
	}
	if to < from {
		panic(fmt.Sprintf("power: wattmeter observed negative interval [%.3f,%.3f)", from, to))
	}
	if !m.started {
		m.lastT = from
		m.started = true
	}
	// First grid point not yet emitted and inside [from, to).
	start := math.Ceil(m.lastT/m.Period) * m.Period
	if start < from {
		start = math.Ceil(from/m.Period) * m.Period
	}
	for t := start; t < to; t += m.Period {
		m.lastT = t + 1e-9
		if m.DropoutRate > 0 && m.rng != nil && m.rng.Float64() < m.DropoutRate {
			continue
		}
		v := w
		if m.NoiseW > 0 && m.rng != nil {
			v += (m.rng.Float64()*2 - 1) * m.NoiseW
			if v < 0 {
				v = 0
			}
		}
		m.append(Sample{T: t, W: v})
	}
	if m.lastT < to {
		m.lastT = to
	}
}

func (m *Wattmeter) append(s Sample) {
	m.samples = append(m.samples, s)
	if m.MaxSamples > 0 && len(m.samples) > m.MaxSamples {
		// Drop the oldest half in one copy to amortize.
		keep := m.MaxSamples / 2
		if keep < 1 {
			keep = 1
		}
		copy(m.samples, m.samples[len(m.samples)-keep:])
		m.samples = m.samples[:keep]
	}
}

// Len returns the number of retained samples.
func (m *Wattmeter) Len() int { return len(m.samples) }

// Samples returns the retained trace. Callers must not mutate it.
func (m *Wattmeter) Samples() []Sample { return m.samples }

// MeanWindow returns the average draw over samples with T in
// [from, to], and the number of samples that contributed. This is the
// query the dynamic estimator issues: "energy consumed by this server
// while computing past requests, divided by time".
func (m *Wattmeter) MeanWindow(from, to float64) (Watts, int) {
	if len(m.samples) == 0 || to < from {
		return 0, 0
	}
	lo := sort.Search(len(m.samples), func(i int) bool { return m.samples[i].T >= from })
	sum, n := 0.0, 0
	for i := lo; i < len(m.samples) && m.samples[i].T <= to; i++ {
		sum += m.samples[i].W
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// MeanLast returns the average of the most recent n samples (all, if
// fewer are retained) and how many contributed.
func (m *Wattmeter) MeanLast(n int) (Watts, int) {
	if n <= 0 || len(m.samples) == 0 {
		return 0, 0
	}
	if n > len(m.samples) {
		n = len(m.samples)
	}
	sum := 0.0
	for _, s := range m.samples[len(m.samples)-n:] {
		sum += s.W
	}
	return sum / float64(n), n
}
