package power

// Source provides per-node power readings — the plug point through
// which per-node watts can come from somewhere other than the built-in
// analytic curves: an out-of-process estimator sidecar (powerd.Client),
// a recorded trace replayed into the simulator, or a static table. The
// metrics/values pair carries the caller's operating point as parallel
// slices (the wire shape of powerd.PowerRequest); sources read the
// metrics they understand and ignore the rest. ok is false when the
// source has no reading for the node — callers fall back to whatever
// they used before (the moving-average estimator, a static profile).
//
// Implementations must be safe for concurrent use: the live middleware
// polls sources from every execution slot at once.
type Source interface {
	NodePowerW(node string, metrics []string, values []float64) (Watts, bool)
}

// Well-known metric names. Sources ignore metrics they don't
// understand, so callers send what they have and protocol growth stays
// backward-compatible.
const (
	// MetricUtil is the node's utilization in [0, 1] (busy slots over
	// total slots) — what the analytic curves interpolate on.
	MetricUtil = "util"
	// MetricTime is the caller's clock reading in seconds — what
	// trace-backed sources key their deterministic replay on.
	MetricTime = "t"
)

// MetricValue returns the named metric from the paired slices; ok is
// false when absent (or the slices disagree in length at that index).
func MetricValue(metrics []string, values []float64, name string) (float64, bool) {
	for i, m := range metrics {
		if m == name && i < len(values) {
			return values[i], true
		}
	}
	return 0, false
}

// SourceFunc adapts a bare function to Source.
type SourceFunc func(node string, metrics []string, values []float64) (Watts, bool)

// NodePowerW implements Source.
func (f SourceFunc) NodePowerW(node string, metrics []string, values []float64) (Watts, bool) {
	return f(node, metrics, values)
}

// StaticSource is a fixed node→watts table — the simplest Source, used
// as a fallback when the sidecar's model is a constant-draw profile and
// in tests. Nodes absent from the table report no reading.
type StaticSource map[string]Watts

// NodePowerW implements Source.
func (s StaticSource) NodePowerW(node string, _ []string, _ []float64) (Watts, bool) {
	w, ok := s[node]
	return w, ok
}

// CurveSource serves the built-in analytic curves: each node's Model
// evaluated at the caller-reported utilization (MetricUtil, clamped to
// [0, 1]; absent means idle). This is the fallback a powerd.Client
// trips to when the sidecar is unreachable — the same power model the
// in-process estimator path has always used — and doubles as the
// reference sidecar's default model.
type CurveSource struct {
	// Nodes maps node names to their curves; Default serves nodes not
	// in the map (nil Default: no reading for unknown nodes).
	Nodes   map[string]Model
	Default Model
}

// NodePowerW implements Source.
func (c CurveSource) NodePowerW(node string, metrics []string, values []float64) (Watts, bool) {
	m := c.Default
	if cm, ok := c.Nodes[node]; ok {
		m = cm
	}
	if m == nil {
		return 0, false
	}
	u, _ := MetricValue(metrics, values, MetricUtil)
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return m.Power(On, u), true
}

// ModelName identifies the curve model in powerd responses.
func (c CurveSource) ModelName() string { return "curve" }

// ReadingSource is an optional Source extension for implementations
// that cache their last good reading per node (powerd.Client): the
// reading plus its age lets callers decide whether a value is fresh
// enough to attribute energy with.
type ReadingSource interface {
	Source
	// LastReading returns the node's most recent successful reading
	// and how many seconds ago it was taken; ok is false before the
	// first success.
	LastReading(node string) (w Watts, ageSec float64, ok bool)
}
