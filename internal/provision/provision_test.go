package provision

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordXMLRoundTripFigure8(t *testing.T) {
	plan := &Plan{Records: []Record{{
		Value:       1385896446,
		Temperature: 23.5,
		Candidates:  8,
		Cost:        0.6,
	}}}
	data, err := plan.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	// The Figure 8 sample schema.
	for _, want := range []string{
		`<timestamp value="1385896446">`,
		`<temperature>23.5</temperature>`,
		`<candidates>8</candidates>`,
		`<electricity_cost>0.6</electricity_cost>`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("marshalled plan missing %q:\n%s", want, s)
		}
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 {
		t.Fatalf("round trip record count = %d", len(back.Records))
	}
	got, want := back.Records[0], plan.Records[0]
	if got.Value != want.Value || got.Temperature != want.Temperature ||
		got.Candidates != want.Candidates || got.Cost != want.Cost {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestParsePlanRejectsGarbage(t *testing.T) {
	if _, err := ParsePlan([]byte("<provisioning><timestamp")); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestStorePutAtWindow(t *testing.T) {
	s := NewStore()
	if _, ok := s.At(100); ok {
		t.Fatal("empty store should have no record")
	}
	s.Put(Record{Value: 100, Cost: 1.0, Temperature: 20})
	s.Put(Record{Value: 300, Cost: 0.5, Temperature: 20})
	s.Put(Record{Value: 200, Cost: 0.8, Temperature: 20})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	rec, ok := s.At(250)
	if !ok || rec.Value != 200 {
		t.Fatalf("At(250) = %+v, want record 200", rec)
	}
	rec, _ = s.At(300)
	if rec.Value != 300 {
		t.Fatalf("At(300) = %+v", rec)
	}
	if _, ok := s.At(50); ok {
		t.Fatal("At before first record should be !ok")
	}
	w := s.Window(150, 300)
	if len(w) != 2 || w[0].Value != 200 || w[1].Value != 300 {
		t.Fatalf("Window = %+v", w)
	}
	// Replacement.
	s.Put(Record{Value: 200, Cost: 0.7})
	rec, _ = s.At(200)
	if rec.Cost != 0.7 {
		t.Fatal("Put did not replace same-timestamp record")
	}
	if s.Len() != 3 {
		t.Fatal("replacement changed length")
	}
}

func TestStoreSnapshotAndLoad(t *testing.T) {
	s := NewStore()
	s.Put(Record{Value: 2, Cost: 0.5})
	s.Put(Record{Value: 1, Cost: 1.0})
	snap := s.Snapshot()
	if len(snap.Records) != 2 || snap.Records[0].Value != 1 {
		t.Fatalf("Snapshot = %+v", snap.Records)
	}
	s2 := NewStore()
	s2.LoadPlan(snap)
	if rec, ok := s2.At(1); !ok || rec.Cost != 1.0 {
		t.Fatal("LoadPlan lost data")
	}
	// Load unsorted plans.
	s3 := NewStore()
	s3.LoadPlan(&Plan{Records: []Record{{Value: 9}, {Value: 3}}})
	if w := s3.Window(0, 10); w[0].Value != 3 {
		t.Fatal("LoadPlan must sort records")
	}
}

func TestStoreConcurrentReadersWriters(t *testing.T) {
	// The paper specifies a readers-writer lock; hammer it under the
	// race detector.
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Put(Record{Value: int64(i*4 + w), Cost: 0.5})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.At(int64(i))
				s.Window(0, int64(i))
				s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

func TestDefaultRulesMatchPaperThresholds(t *testing.T) {
	rules := DefaultRules()
	if err := rules.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		st   Status
		want int // on the paper's 12-node platform
		rule string
	}{
		{Status{Temperature: 26, Cost: 0.3}, 2, "heat"},          // T>25 wins over cheap cost
		{Status{Temperature: 20, Cost: 1.0}, 4, "regular-cost"},  // 40% of 12
		{Status{Temperature: 20, Cost: 0.81}, 4, "regular-cost"}, // just above 0.8
		{Status{Temperature: 20, Cost: 0.8}, 8, "off-peak-1"},    // 70% of 12 = 8.4 → 8
		{Status{Temperature: 20, Cost: 0.6}, 8, "off-peak-1"},
		{Status{Temperature: 20, Cost: 0.5}, 12, "off-peak-2"}, // experiment's Event 2
		{Status{Temperature: 20, Cost: 0.2}, 12, "off-peak-2"},
	}
	for _, c := range cases {
		if got := rules.Quota(c.st, 12, 1); got != c.want {
			t.Errorf("Quota(%+v) = %d, want %d", c.st, got, c.want)
		}
		if got := rules.Match(c.st); got != c.rule {
			t.Errorf("Match(%+v) = %q, want %q", c.st, got, c.rule)
		}
	}
}

func TestRulesQuotaMinimumAndFallback(t *testing.T) {
	rules := DefaultRules()
	// 20% of 12 = 2.4 → 2, floored at MinNodes=2 anyway.
	if got := rules.Quota(Status{Temperature: 30, Cost: 1}, 12, 2); got != 2 {
		t.Fatalf("heat quota = %d, want 2", got)
	}
	// Empty rule set: fail-open.
	if got := (Rules{}).Quota(Status{}, 12, 1); got != 12 {
		t.Fatalf("fallback quota = %d, want 12", got)
	}
	if (Rules{}).Match(Status{}) != "" {
		t.Fatal("empty rules should not match")
	}
}

func TestRulesValidate(t *testing.T) {
	bad := Rules{{Name: "x", Matches: nil, Fraction: 0.5}}
	if bad.Validate() == nil {
		t.Fatal("nil predicate accepted")
	}
	bad = Rules{{Name: "x", Matches: func(Status) bool { return true }, Fraction: 0}}
	if bad.Validate() == nil {
		t.Fatal("zero fraction accepted")
	}
	bad = Rules{{Name: "x", Matches: func(Status) bool { return true }, Fraction: 1.5}}
	if bad.Validate() == nil {
		t.Fatal("fraction above 1 accepted")
	}
}

func TestPlannerValidate(t *testing.T) {
	p := NewPlanner(12, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.TotalNodes = 0
	if p.Validate() == nil {
		t.Fatal("zero nodes accepted")
	}
	p = NewPlanner(12, 20)
	if p.Validate() == nil {
		t.Fatal("start above total accepted")
	}
	p = NewPlanner(12, 4)
	p.StepUp = 0
	if p.Validate() == nil {
		t.Fatal("zero step accepted")
	}
	p = NewPlanner(12, 4)
	p.CheckPeriod = 0
	if p.Validate() == nil {
		t.Fatal("zero period accepted")
	}
}

func TestPlannerHoldsSteadyState(t *testing.T) {
	store := NewStore()
	store.Put(Record{Value: 0, Cost: 1.0, Temperature: 20})
	p := NewPlanner(12, 4)
	for now := 0.0; now <= 3000; now += 600 {
		d := p.Check(now, store)
		if d.Pool != 4 || d.Changed != 0 {
			t.Fatalf("steady state drifted at %v: %+v", now, d)
		}
	}
}

func TestPlannerPreRampsForScheduledEvent(t *testing.T) {
	// Event 1 of §IV-C: cost drops to 0.8 at t=3600 (t+60 min).
	// Check period 600 s, lookahead 1200 s: the MA learns about it at
	// t=2400 (t+40), steps at t=3000 (t+50) and t=3600 (t+60) so the
	// pool reaches 8 exactly when the cheap period starts.
	store := NewStore()
	store.Put(Record{Value: 0, Cost: 1.0, Temperature: 20})
	store.Put(Record{Value: 3600, Cost: 0.8, Temperature: 20})
	p := NewPlanner(12, 4)
	pools := map[float64]int{}
	for now := 0.0; now <= 3600; now += 600 {
		d := p.Check(now, store)
		pools[now] = d.Pool
	}
	if pools[2400] != 4 {
		t.Fatalf("pool at t+40min = %d, want 4 (ramp not started yet)", pools[2400])
	}
	if pools[3000] != 6 {
		t.Fatalf("pool at t+50min = %d, want 6 (first progressive step)", pools[3000])
	}
	if pools[3600] != 8 {
		t.Fatalf("pool at t+60min = %d, want 8 (target reached on time)", pools[3600])
	}
}

func TestPlannerRampsToFullPlatform(t *testing.T) {
	// Event 2: cost 0.5 → 100% of nodes, ramped progressively.
	store := NewStore()
	store.Put(Record{Value: 0, Cost: 0.8, Temperature: 20})
	store.Put(Record{Value: 6000, Cost: 0.5, Temperature: 20})
	p := NewPlanner(12, 8)
	var last Decision
	for now := 0.0; now <= 6000; now += 600 {
		last = p.Check(now, store)
	}
	if last.Pool != 12 {
		t.Fatalf("pool = %d, want 12", last.Pool)
	}
}

func TestPlannerUnexpectedHeatDropsInSteps(t *testing.T) {
	// Event 3: temperature rise detected at the check; pool 12 → 2 in
	// 3 steps of StepDown=4 (12→8→4→2 with MinNodes=2).
	store := NewStore()
	store.Put(Record{Value: 0, Cost: 0.5, Temperature: 20})
	p := NewPlanner(12, 12)
	p.MinNodes = 2
	store.Put(Record{Value: 500, Cost: 0.5, Temperature: 27}) // unexpected event
	want := []int{8, 4, 2, 2}
	for i, now := range []float64{600, 1200, 1800, 2400} {
		d := p.Check(now, store)
		if d.Pool != want[i] {
			t.Fatalf("check %d: pool = %d, want %d (decision %+v)", i, d.Pool, want[i], d)
		}
		if i == 0 && d.RuleNow != "heat" {
			t.Fatalf("heat rule not matched: %+v", d)
		}
	}
}

func TestPlannerRecoversAfterHeat(t *testing.T) {
	// Event 4: temperature back in range; pool re-ramps by StepUp per
	// check toward 12.
	store := NewStore()
	store.Put(Record{Value: 0, Cost: 0.5, Temperature: 27})
	p := NewPlanner(12, 2)
	p.MinNodes = 2
	store.Put(Record{Value: 100, Cost: 0.5, Temperature: 22})
	pools := []int{}
	for now := 600.0; now <= 3600; now += 600 {
		pools = append(pools, p.Check(now, store).Pool)
	}
	want := []int{4, 6, 8, 10, 12, 12}
	for i := range want {
		if pools[i] != want[i] {
			t.Fatalf("recovery pools = %v, want %v", pools, want)
		}
	}
}

func TestPlannerNoPreShrink(t *testing.T) {
	// A future cost *increase* must not shrink the pool early.
	store := NewStore()
	store.Put(Record{Value: 0, Cost: 0.5, Temperature: 20})
	store.Put(Record{Value: 1200, Cost: 1.0, Temperature: 20})
	p := NewPlanner(12, 12)
	d := p.Check(0, store)
	if d.Pool != 12 {
		t.Fatalf("planner pre-shrank: %+v", d)
	}
	// At the event, it shrinks.
	d = p.Check(1200, store)
	if d.Pool >= 12 {
		t.Fatalf("planner did not shrink at the event: %+v", d)
	}
}

func TestPlannerEmptyStoreAssumesRegular(t *testing.T) {
	p := NewPlanner(12, 4)
	d := p.Check(0, NewStore())
	if d.TargetNow != 4 { // regular cost → 40% of 12
		t.Fatalf("default status target = %d, want 4", d.TargetNow)
	}
}

func TestPlannerHysteresisConfirmDown(t *testing.T) {
	store := NewStore()
	store.Put(Record{Value: 0, Cost: 0.5, Temperature: 20})
	p := NewPlanner(12, 12)
	p.MinNodes = 2
	p.ConfirmDown = 2

	// One transient heat reading must NOT shrink the pool.
	store.Put(Record{Value: 500, Cost: 0.5, Temperature: 27, Unexpected: true})
	d := p.Check(600, store)
	if d.Pool != 12 {
		t.Fatalf("single out-of-range reading shrank the pool to %d", d.Pool)
	}
	// Recovery resets the confirmation counter.
	store.Put(Record{Value: 700, Cost: 0.5, Temperature: 22, Unexpected: true})
	d = p.Check(1200, store)
	if d.Pool != 12 {
		t.Fatalf("pool = %d after recovery", d.Pool)
	}
	// Two consecutive hot checks do shrink.
	store.Put(Record{Value: 1300, Cost: 0.5, Temperature: 27, Unexpected: true})
	d = p.Check(1800, store)
	if d.Pool != 12 {
		t.Fatalf("first confirmed-down check should still hold: %d", d.Pool)
	}
	d = p.Check(2400, store)
	if d.Pool != 8 {
		t.Fatalf("second consecutive hot check should shrink: %d", d.Pool)
	}
}

func TestCeilDiv(t *testing.T) {
	if ceilDiv(4, 2) != 2 || ceilDiv(5, 2) != 3 || ceilDiv(1, 4) != 1 {
		t.Fatal("ceilDiv wrong")
	}
	if ceilDiv(5, 0) != 5 {
		t.Fatal("ceilDiv with zero divisor should degrade gracefully")
	}
}
