package provision

import (
	"fmt"
	"math"
)

// This file holds the SLA-aware headroom rules: the §IV-C
// administrator behaviours shrink the candidate pool when electricity
// is dear or the grid is dirty, but a pool sized by price alone can
// fall below what admitted deadlines need. SLAHeadroomRules inserts a
// demand-proportional capacity floor between the thermal rule (which
// keeps absolute priority — hardware safety trumps revenue) and the
// economic rules, so the planner's lookahead pre-ramps capacity into
// forecast demand peaks exactly as it pre-ramps into cheap-energy
// windows.

// SLAHeadroomRules returns base with a demand floor spliced in after
// any leading "heat" rule: records reporting DemandFlops > 0 resolve
// to at least
//
//	ceil(Headroom × DemandFlops / nodeFlops)
//
// candidates — never fewer than the economic rules would grant, so the
// floor only ever *adds* capacity. nodeFlops is the sustained flop/s
// of one candidate node (use the platform's slowest node to keep the
// guarantee conservative); Headroom ≥ 1 reserves margin for queueing
// and estimation error. Records without a demand forecast fall through
// to base unchanged.
func SLAHeadroomRules(nodeFlops, headroom float64, base Rules) (Rules, error) {
	if nodeFlops <= 0 {
		return nil, fmt.Errorf("provision: headroom rule needs positive per-node flops, got %v", nodeFlops)
	}
	if headroom < 1 {
		return nil, fmt.Errorf("provision: headroom factor %v must be at least 1", headroom)
	}
	rest := base
	var out Rules
	if len(base) > 0 && base[0].Name == "heat" {
		out = append(out, base[0]) // thermal safety keeps priority
		rest = base[1:]
	}
	out = append(out, Rule{
		Name:    "sla-headroom",
		Matches: func(s Status) bool { return s.DemandFlops > 0 },
		Nodes: func(s Status, totalNodes, minNodes int) int {
			need := int(math.Ceil(headroom * s.DemandFlops / nodeFlops))
			if economic := rest.Quota(s, totalNodes, minNodes); economic > need {
				need = economic
			}
			return need
		},
	})
	return append(out, rest...), nil
}
