package provision

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// TestPlanXMLRoundTripQuick: any set of sane records must survive
// Store → Snapshot → XML → ParsePlan → LoadPlan bit-exactly. The plan
// file is the §IV-C coordination point between the monitoring system
// and the Master Agent, so codec fidelity is an invariant, not a
// convenience.
func TestPlanXMLRoundTripQuick(t *testing.T) {
	f := func(stamps []int64, temps []float64, costs []float64, cands []uint8) bool {
		n := len(stamps)
		for _, s := range [][]int{{len(temps)}, {len(costs)}, {len(cands)}} {
			if s[0] < n {
				n = s[0]
			}
		}
		if n == 0 {
			return true
		}
		store := NewStore()
		seen := make(map[int64]bool)
		want := 0
		for i := 0; i < n; i++ {
			stamp := stamps[i] % 1e9
			if stamp < 0 {
				stamp = -stamp
			}
			temp := math.Mod(temps[i], 60)
			cost := math.Abs(math.Mod(costs[i], 1))
			if math.IsNaN(temp) || math.IsNaN(cost) {
				continue
			}
			if !seen[stamp] {
				want++ // Put overwrites same-stamp records
			}
			seen[stamp] = true
			store.Put(Record{
				Value:       stamp,
				Temperature: temp,
				Cost:        cost,
				Candidates:  int(cands[i]),
				Unexpected:  cands[i]%2 == 0,
			})
		}
		if want == 0 {
			return true
		}
		data, err := store.Snapshot().MarshalIndent()
		if err != nil {
			return false
		}
		back, err := ParsePlan(data)
		if err != nil {
			return false
		}
		if len(back.Records) != want {
			return false
		}
		// Records come back sorted by timestamp with all fields intact.
		if !sort.SliceIsSorted(back.Records, func(i, j int) bool {
			return back.Records[i].Value < back.Records[j].Value
		}) {
			return false
		}
		restored := NewStore()
		restored.LoadPlan(back)
		for _, rec := range back.Records {
			got, ok := restored.At(rec.Value)
			if !ok || got.Temperature != rec.Temperature ||
				got.Cost != rec.Cost || got.Candidates != rec.Candidates ||
				got.Unexpected != rec.Unexpected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
