package provision_test

import (
	"fmt"

	"greensched/internal/provision"
)

// ExamplePlan_MarshalIndent renders the Figure 8 provisioning record.
func ExamplePlan_MarshalIndent() {
	plan := &provision.Plan{Records: []provision.Record{{
		Value:       1385896446,
		Temperature: 23.5,
		Candidates:  8,
		Cost:        0.6,
	}}}
	out, _ := plan.MarshalIndent()
	fmt.Println(string(out))
	// Output:
	// <provisioning>
	//     <timestamp value="1385896446">
	//         <temperature>23.5</temperature>
	//         <candidates>8</candidates>
	//         <electricity_cost>0.6</electricity_cost>
	//     </timestamp>
	// </provisioning>
}

// ExampleRules_Quota applies the §IV-C administrator thresholds on the
// paper's 12-node platform.
func ExampleRules_Quota() {
	rules := provision.DefaultRules()
	for _, st := range []provision.Status{
		{Temperature: 27, Cost: 0.3}, // heat overrides cheap energy
		{Temperature: 20, Cost: 1.0}, // regular time
		{Temperature: 20, Cost: 0.7}, // off-peak 1
		{Temperature: 20, Cost: 0.4}, // off-peak 2
	} {
		fmt.Println(rules.Quota(st, 12, 1))
	}
	// Output:
	// 2
	// 4
	// 8
	// 12
}
