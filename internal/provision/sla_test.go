package provision

import (
	"strings"
	"testing"
)

// TestSLAHeadroomRulesFloor: a demand forecast raises the quota above
// what the economic rules grant, never below.
func TestSLAHeadroomRulesFloor(t *testing.T) {
	// 10 nodes of 1e11 flop/s; margin 1.2.
	rules, err := SLAHeadroomRules(1e11, 1.2, DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if err := rules.Validate(); err != nil {
		t.Fatal(err)
	}

	// Regular cost grants 40% = 4 nodes; demand needs
	// ceil(1.2 × 5e11 / 1e11) = 6 → demand wins.
	st := Status{Temperature: 20, Cost: 0.9, DemandFlops: 5e11}
	if got := rules.Quota(st, 10, 1); got != 6 {
		t.Errorf("quota = %d, want 6 (demand floor)", got)
	}

	// Cheap energy grants 100%; tiny demand must not shrink it.
	st = Status{Temperature: 20, Cost: 0.2, DemandFlops: 1e11}
	if got := rules.Quota(st, 10, 1); got != 10 {
		t.Errorf("quota = %d, want 10 (economic rules win)", got)
	}

	// No demand reported: classic behaviour.
	st = Status{Temperature: 20, Cost: 0.9}
	if got := rules.Quota(st, 10, 1); got != 4 {
		t.Errorf("quota = %d, want 4", got)
	}

	// Thermal safety keeps absolute priority over demand.
	st = Status{Temperature: 30, Cost: 0.9, DemandFlops: 9e11}
	if got := rules.Quota(st, 10, 1); got != 2 {
		t.Errorf("quota = %d, want 2 (heat rule)", got)
	}

	// Demand beyond the platform clamps to every node.
	st = Status{Temperature: 20, Cost: 0.9, DemandFlops: 9e12}
	if got := rules.Quota(st, 10, 1); got != 10 {
		t.Errorf("quota = %d, want 10 (clamped)", got)
	}
}

func TestSLAHeadroomRulesValidate(t *testing.T) {
	if _, err := SLAHeadroomRules(0, 1.2, DefaultRules()); err == nil {
		t.Error("zero node flops accepted")
	}
	if _, err := SLAHeadroomRules(1e11, 0.5, DefaultRules()); err == nil {
		t.Error("headroom below 1 accepted")
	}
}

// TestSLAHeadroomComposesWithCarbonRules: demand floors splice into
// the carbon rule set the same way.
func TestSLAHeadroomComposesWithCarbonRules(t *testing.T) {
	rules, err := SLAHeadroomRules(1e11, 1.0, CarbonRules(150, 450))
	if err != nil {
		t.Fatal(err)
	}
	// Dirty grid grants 30% = 3; demand needs 7.
	st := Status{Temperature: 20, Carbon: 500, DemandFlops: 7e11}
	if got := rules.Quota(st, 10, 1); got != 7 {
		t.Errorf("quota = %d, want 7", got)
	}
	// Dirty grid, no demand: carbon band rules.
	st = Status{Temperature: 20, Carbon: 500}
	if got := rules.Quota(st, 10, 1); got != 3 {
		t.Errorf("quota = %d, want 3", got)
	}
}

// TestPlannerPreRampsIntoForecastDemand: a scheduled demand spike
// inside the lookahead horizon ramps the pool up ahead of time — the
// admission guarantee arrives provisioned, not surprised.
func TestPlannerPreRampsIntoForecastDemand(t *testing.T) {
	rules, err := SLAHeadroomRules(1e11, 1.0, DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(10, 4)
	p.Rules = rules
	p.StepUp = 2
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	store := NewStore()
	// Regular cost now; a forecast demand spike needing 8 nodes at
	// t=1200 (two check periods ahead).
	store.Put(Record{Value: 0, Temperature: 20, Cost: 0.9})
	store.Put(Record{Value: 1200, Temperature: 20, Cost: 0.9, DemandFlops: 8e11})

	// t=0: the spike is visible (TargetNext) but the ramp is timed to
	// arrive exactly at the event: 2 steps of 2 starting at t=600.
	d := p.Check(0, store)
	if d.TargetNext != 8 {
		t.Fatalf("lookahead target %d, want 8", d.TargetNext)
	}
	if d.Pool != 4 {
		t.Fatalf("pool at t=0 = %d, want 4 (ramp not due yet)", d.Pool)
	}
	d = p.Check(600, store)
	if d.Pool != 6 {
		t.Fatalf("pool after first ramp step = %d, want 6", d.Pool)
	}
	d = p.Check(1200, store)
	if d.Pool != 8 {
		t.Fatalf("pool at spike start = %d, want 8", d.Pool)
	}
}

// TestRecordDemandXMLRoundTrip: the demand column survives the
// Figure 8 plan schema.
func TestRecordDemandXMLRoundTrip(t *testing.T) {
	plan := &Plan{Records: []Record{
		{Value: 10, Temperature: 21, Candidates: 4, Cost: 0.6, DemandFlops: 3.5e11},
		{Value: 20, Temperature: 21, Candidates: 4, Cost: 0.6},
	}}
	data, err := plan.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "demand_flops") {
		t.Fatalf("demand not serialized:\n%s", data)
	}
	// Records without demand omit the element.
	if strings.Count(string(data), "demand_flops") != 2 { // open+close tags once
		t.Fatalf("demand element count wrong:\n%s", data)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Records[0].DemandFlops != 3.5e11 || back.Records[1].DemandFlops != 0 {
		t.Fatalf("round trip: %+v", back.Records)
	}
}

// TestRuleNodesValidate: a rule computing its quota directly needs no
// fraction, but a predicate is still mandatory.
func TestRuleNodesValidate(t *testing.T) {
	ok := Rules{{
		Name:    "direct",
		Matches: func(Status) bool { return true },
		Nodes:   func(_ Status, total, _ int) int { return total },
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("direct-quota rule rejected: %v", err)
	}
	bad := Rules{{Name: "no-predicate", Nodes: func(_ Status, total, _ int) int { return total }}}
	if err := bad.Validate(); err == nil {
		t.Error("rule without predicate validated")
	}
}
