package provision

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.xml")

	s := NewStore()
	s.Put(Record{Value: 100, Cost: 1.0, Temperature: 22})
	s.Put(Record{Value: 200, Cost: 0.5, Temperature: 23, Candidates: 8})
	s.Put(Record{Value: 300, Cost: 0.5, Temperature: 28, Unexpected: true})
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<timestamp value="100">`, `<electricity_cost>0.5</electricity_cost>`,
		`unexpected="true"`, `<candidates>8</candidates>`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("saved plan missing %q:\n%s", want, data)
		}
	}

	loaded := NewStore()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3 {
		t.Fatalf("loaded %d records", loaded.Len())
	}
	rec, ok := loaded.At(250)
	if !ok || rec.Candidates != 8 || rec.Cost != 0.5 {
		t.Fatalf("At(250) = %+v", rec)
	}
	rec, _ = loaded.At(300)
	if !rec.Unexpected {
		t.Fatal("unexpected flag lost")
	}
}

func TestSaveFileAtomicReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.xml")
	s := NewStore()
	s.Put(Record{Value: 1, Cost: 1})
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s.Put(Record{Value: 2, Cost: 0.5})
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("replacement lost records: %d", loaded.Len())
	}
	// No temp-file litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the plan", len(entries))
	}
}

func TestLoadFileErrors(t *testing.T) {
	s := NewStore()
	if err := s.LoadFile(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.xml")
	os.WriteFile(bad, []byte("<provisioning><timestamp"), 0o644)
	if err := s.LoadFile(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestSaveFileBadDirectory(t *testing.T) {
	s := NewStore()
	if err := s.SaveFile("/nonexistent-dir-xyz/plan.xml"); err == nil {
		t.Fatal("unwritable directory accepted")
	}
}
