package provision

import (
	"fmt"
	"os"
	"path/filepath"
)

// SaveFile writes the store's plan as indented XML, atomically
// (write-to-temp + rename), matching the paper's deployment where the
// provisioning planning is "a shared XML file".
func (s *Store) SaveFile(path string) error {
	data, err := s.Snapshot().MarshalIndent()
	if err != nil {
		return fmt.Errorf("provision: marshalling plan: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".plan-*.xml")
	if err != nil {
		return fmt.Errorf("provision: creating temp plan: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("provision: writing plan: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("provision: closing plan: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("provision: publishing plan: %w", err)
	}
	return nil
}

// LoadFile replaces the store contents from an XML plan file.
func (s *Store) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("provision: reading plan: %w", err)
	}
	plan, err := ParsePlan(data)
	if err != nil {
		return err
	}
	s.LoadPlan(plan)
	return nil
}
