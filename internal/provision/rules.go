package provision

import (
	"fmt"

	"greensched/internal/core"
)

// Status is the platform status the rules evaluate: the exploited
// metrics at time t.
type Status struct {
	Temperature float64 // °C
	Cost        float64 // electricity cost ratio in [0,1]
	Carbon      float64 // grid carbon intensity in gCO2/kWh (0 = unknown)
	// DemandFlops is the forecast admitted demand in flop/s (0 =
	// unknown); SLA headroom rules size the pool to cover it.
	DemandFlops float64
}

// Rule maps a platform status to a candidate-node fraction. Rules are
// evaluated in order; the first match wins — administrators "set
// limits to the number of active nodes in case of out-of-range
// values".
type Rule struct {
	Name     string
	Matches  func(Status) bool
	Fraction float64 // fraction of all nodes made candidates
	// Nodes, when set, computes the quota directly from the status
	// (overriding Fraction) — the hook demand-proportional rules use.
	// The result is still clamped to [minNodes, totalNodes].
	Nodes func(st Status, totalNodes, minNodes int) int
}

// Rules is an ordered rule set.
type Rules []Rule

// Quota resolves the status to a candidate count over totalNodes,
// flooring at minNodes. Falls back to all nodes if no rule matches
// (fail-open keeps the platform usable under unanticipated statuses).
func (rs Rules) Quota(st Status, totalNodes, minNodes int) int {
	for _, r := range rs {
		if !r.Matches(st) {
			continue
		}
		if r.Nodes != nil {
			return clampNodes(r.Nodes(st, totalNodes, minNodes), totalNodes, minNodes)
		}
		return core.CandidateQuota(totalNodes, r.Fraction, minNodes)
	}
	return totalNodes
}

func clampNodes(n, totalNodes, minNodes int) int {
	if n < minNodes {
		n = minNodes
	}
	if n > totalNodes {
		n = totalNodes
	}
	return n
}

// Match returns the first matching rule's name, or "" when none match.
func (rs Rules) Match(st Status) string {
	for _, r := range rs {
		if r.Matches(st) {
			return r.Name
		}
	}
	return ""
}

// Validate rejects rule sets with non-positive fractions or missing
// predicates.
func (rs Rules) Validate() error {
	for i, r := range rs {
		if r.Matches == nil {
			return fmt.Errorf("provision: rule %d (%s) has no predicate", i, r.Name)
		}
		if r.Nodes != nil {
			continue // quota computed directly; Fraction unused
		}
		if r.Fraction <= 0 || r.Fraction > 1 {
			return fmt.Errorf("provision: rule %d (%s) has fraction %v outside (0,1]", i, r.Name, r.Fraction)
		}
	}
	return nil
}

// DefaultHeatThreshold is the paper's out-of-range temperature bound.
const DefaultHeatThreshold = 25.0

// DefaultRules returns exactly the §IV-C administrator behaviours:
//
//	if T > 25           → candidate nodes = 20 % of all nodes
//	if 1.0 ≥ c > 0.8    → 40 %
//	if 0.8 ≥ c > 0.5    → 70 %
//	if c < 0.5          → 100 %
//
// The paper's inequalities leave c == 0.5 unassigned; the experiment's
// "Off-peak time 2" state (cost 0.5) uses every available node, so the
// last rule is c ≤ 0.5 → 100 %.
func DefaultRules() Rules {
	return Rules{
		{
			Name:     "heat",
			Matches:  func(s Status) bool { return s.Temperature > DefaultHeatThreshold },
			Fraction: 0.20,
		},
		{
			Name:     "regular-cost",
			Matches:  func(s Status) bool { return s.Cost > 0.8 },
			Fraction: 0.40,
		},
		{
			Name:     "off-peak-1",
			Matches:  func(s Status) bool { return s.Cost > 0.5 },
			Fraction: 0.70,
		},
		{
			Name:     "off-peak-2",
			Matches:  func(s Status) bool { return s.Cost <= 0.5 },
			Fraction: 1.00,
		},
	}
}

// CarbonRules extends the administrator behaviours with grid
// carbon-intensity bands: the candidate pool shrinks when the grid is
// dirty (above dirtyG) and opens fully when it is clean (at or below
// cleanG). Records without a carbon reading (Carbon == 0) fall through
// to the classic cost rules, so carbon-aware and cost-only plans
// compose. The heat rule keeps absolute priority — thermal events
// trump green scheduling.
func CarbonRules(cleanG, dirtyG float64) Rules {
	carbon := Rules{
		{
			Name:     "heat",
			Matches:  func(s Status) bool { return s.Temperature > DefaultHeatThreshold },
			Fraction: 0.20,
		},
		{
			Name:     "carbon-peak",
			Matches:  func(s Status) bool { return s.Carbon >= dirtyG },
			Fraction: 0.30,
		},
		{
			Name:     "carbon-shoulder",
			Matches:  func(s Status) bool { return s.Carbon > cleanG },
			Fraction: 0.60,
		},
		{
			Name:     "carbon-trough",
			Matches:  func(s Status) bool { return s.Carbon > 0 },
			Fraction: 1.00,
		},
	}
	// Cost fallback for records without a carbon reading (skip the
	// duplicate heat rule).
	return append(carbon, DefaultRules()[1:]...)
}
