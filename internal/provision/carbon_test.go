package provision_test

import (
	"testing"

	"greensched/internal/carbon"
	"greensched/internal/provision"
)

func TestCarbonRulesQuotas(t *testing.T) {
	rules := provision.CarbonRules(200, 500)
	if err := rules.Validate(); err != nil {
		t.Fatal(err)
	}
	const total, min = 10, 1
	cases := []struct {
		name string
		st   provision.Status
		want int
	}{
		{"dirty grid shrinks the pool", provision.Status{Temperature: 20, Carbon: 600}, 3},
		{"shoulder grid holds the middle", provision.Status{Temperature: 20, Carbon: 350}, 6},
		{"clean grid opens everything", provision.Status{Temperature: 20, Carbon: 150}, 10},
		{"heat event trumps a clean grid", provision.Status{Temperature: 30, Carbon: 150}, 2},
		{"no carbon reading falls back to cost", provision.Status{Temperature: 20, Cost: 1.0}, 4},
		{"no carbon, deep off-peak cost", provision.Status{Temperature: 20, Cost: 0.4}, 10},
	}
	for _, c := range cases {
		if got := rules.Quota(c.st, total, min); got != c.want {
			t.Errorf("%s: quota %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCarbonRecordXMLRoundTrip(t *testing.T) {
	plan := &provision.Plan{Records: []provision.Record{{
		Value: 100, Temperature: 21, Cost: 0.8, Carbon: 412.5,
	}}}
	data, err := plan.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := provision.ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Records[0].Carbon != 412.5 {
		t.Errorf("carbon intensity lost in round trip: %+v", back.Records[0])
	}
	// Records without a reading must omit the element.
	plan2 := &provision.Plan{Records: []provision.Record{{Value: 1, Cost: 1}}}
	data2, err := plan2.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) == "" || containsCarbonTag(string(data2)) {
		t.Errorf("zero carbon must be omitted:\n%s", data2)
	}
}

func containsCarbonTag(s string) bool {
	for i := 0; i+16 <= len(s); i++ {
		if s[i:i+16] == "carbon_intensity" {
			return true
		}
	}
	return false
}

// TestPlannerPreRampsIntoLowCarbonWindow drives the §IV-C planner with
// a plan generated from a diurnal carbon signal: the pool must ramp up
// ahead of the clean midday window (the planner's upward lookahead)
// and shrink again when the grid turns dirty at night.
func TestPlannerPreRampsIntoLowCarbonWindow(t *testing.T) {
	sig := carbon.Diurnal{MeanG: 300, AmplitudeG: 200, CleanHour: 13}
	recs, err := carbon.PlanRecords(sig, 0, carbon.DaySeconds, 1800, 5, 20, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	store := provision.NewStore()
	for _, r := range recs {
		store.Put(r)
	}
	p := provision.NewPlanner(10, 3)
	p.Rules = provision.CarbonRules(200, 450)
	p.MinNodes = 1
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	poolAt := make(map[float64]int)
	for now := 0.0; now < carbon.DaySeconds; now += p.CheckPeriod {
		d := p.Check(now, store)
		poolAt[now] = d.Pool
	}
	// Midnight-ish: intensity ≈ 480 (dirty) → small pool.
	if got := poolAt[600]; got > 4 {
		t.Errorf("dirty midnight pool = %d, want shrunk", got)
	}
	// Midday clean window: full pool.
	if got := poolAt[13*3600]; got != 10 {
		t.Errorf("clean midday pool = %d, want 10", got)
	}
	// Pre-ramp: strictly before the intensity crosses the clean
	// threshold (~09:30), the pool must already exceed the shoulder
	// quota on its way up.
	if got := poolAt[9*3600]; got <= 6 {
		t.Errorf("pool at 09:00 = %d, want pre-ramp above the shoulder quota", got)
	}
	// Night again: pool back down.
	if got := poolAt[23*3600]; got > 4 {
		t.Errorf("dirty night pool = %d, want shrunk again", got)
	}
}
