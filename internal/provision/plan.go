// Package provision implements the paper's provisioning planning
// (§III-C, §IV-C): a shared XML plan of platform-status records
// protected by a readers-writer lock, administrator threshold rules
// mapping electricity cost and temperature to a candidate-node quota,
// and a planner that polls the plan every check period, looks ahead at
// scheduled events, and ramps the candidate pool progressively.
package provision

import (
	"encoding/xml"
	"fmt"
	"sort"
	"sync"
)

// Record is one <timestamp> sample of the provisioning plan, exactly
// the Figure 8 schema:
//
//	<timestamp value="1385896446">
//	    <temperature>23.5</temperature>
//	    <candidates>8</candidates>
//	    <electricity_cost>0.6</electricity_cost>
//	</timestamp>
type Record struct {
	XMLName     xml.Name `xml:"timestamp"`
	Value       int64    `xml:"value,attr"`
	Temperature float64  `xml:"temperature"`
	Candidates  int      `xml:"candidates"`
	Cost        float64  `xml:"electricity_cost"`

	// Carbon is the grid carbon intensity in gCO2/kWh at the record's
	// timestamp (0 = not reported). Carbon-aware rule sets consult it;
	// the classic §IV-C rules ignore it, so plans mixing both kinds of
	// records stay valid.
	Carbon float64 `xml:"carbon_intensity,omitempty"`

	// DemandFlops is the forecast admitted demand in sustained flop/s
	// at the record's timestamp (0 = not reported). SLA headroom rules
	// translate it into a capacity floor so admission guarantees
	// survive cost- and carbon-driven pool shrinks.
	DemandFlops float64 `xml:"demand_flops,omitempty"`

	// Unexpected marks measurements that only become visible when
	// they occur (the §IV-C heat events), as opposed to scheduled
	// events (energy-price changes) the planner may anticipate
	// through its lookahead window.
	Unexpected bool `xml:"unexpected,attr,omitempty"`
}

// Plan is the full provisioning-planning document.
type Plan struct {
	XMLName xml.Name `xml:"provisioning"`
	Records []Record `xml:"timestamp"`
}

// MarshalIndent renders the plan as indented XML.
func (p *Plan) MarshalIndent() ([]byte, error) {
	return xml.MarshalIndent(p, "", "    ")
}

// ParsePlan decodes a plan document.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("provision: parsing plan: %w", err)
	}
	return &p, nil
}

// Store is the shared provisioning planning: "a shared XML file using
// a readers-writers lock that refers to a specific time-stamp". The
// scheduler reads it at every check; monitoring systems, energy
// providers and administrators write future records into it.
type Store struct {
	mu      sync.RWMutex
	records []Record // sorted by Value ascending
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Put inserts or replaces the record for its timestamp.
func (s *Store) Put(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.records), func(i int) bool { return s.records[i].Value >= r.Value })
	if i < len(s.records) && s.records[i].Value == r.Value {
		s.records[i] = r
		return
	}
	s.records = append(s.records, Record{})
	copy(s.records[i+1:], s.records[i:])
	s.records[i] = r
}

// At returns the record in force at time t: the latest record with
// Value <= t. ok is false before the first record.
func (s *Store) At(t int64) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.records), func(i int) bool { return s.records[i].Value > t })
	if i == 0 {
		return Record{}, false
	}
	return s.records[i-1], true
}

// Window returns copies of the records with Value in [from, to],
// oldest first — what the Master Agent reads when it checks the
// platform status "with the ability to get information about the
// scheduled events occurring at t + 20".
func (s *Store) Window(from, to int64) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.Search(len(s.records), func(i int) bool { return s.records[i].Value >= from })
	hi := sort.Search(len(s.records), func(i int) bool { return s.records[i].Value > to })
	out := make([]Record, hi-lo)
	copy(out, s.records[lo:hi])
	return out
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Snapshot returns the whole plan document (copy), oldest first.
func (s *Store) Snapshot() *Plan {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return &Plan{Records: out}
}

// LoadPlan replaces the store contents with a parsed plan document.
func (s *Store) LoadPlan(p *Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append([]Record(nil), p.Records...)
	sort.Slice(s.records, func(i, j int) bool { return s.records[i].Value < s.records[j].Value })
}
