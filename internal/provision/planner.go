package provision

import "fmt"

// Planner implements the Master Agent's autonomic provisioning loop:
// every CheckPeriod it reads the platform status from the plan store,
// resolves the administrator rules to a target candidate count, and
// moves the pool toward the target in bounded steps.
//
// Scheduled events (future records already present in the plan) are
// visible Lookahead seconds ahead; the planner pre-ramps *upward* so
// the pool reaches the future target exactly when the event starts
// ("Observing a future cost of 0.8, the agent plans ahead to provide 8
// candidate nodes at t+60 min. The set of candidates is incremented
// slowly to obtain a progressive start ... It avoids heat peaks due to
// side effect of simultaneous starts"). Downward changes are never
// anticipated: shrinking early would deny service while energy is
// still cheap.
type Planner struct {
	Rules       Rules
	TotalNodes  int
	MinNodes    int     // floor kept alive during out-of-range events
	CheckPeriod float64 // seconds between status checks (600 in §IV-C)
	Lookahead   float64 // visibility horizon (1200 in §IV-C)
	// StepUp / StepDown bound the per-check pool change. The paper's
	// Event 1 ramps 4→8 in two checks (StepUp 2); Event 3 drops 12→2
	// "in 3 steps" (StepDown 4).
	StepUp   int
	StepDown int
	// ConfirmDown requires this many consecutive checks wanting a
	// smaller pool before the first shrink step is taken — hysteresis
	// against flapping on noisy measured signals (e.g. the thermal
	// feedback loop). 1 (the default) shrinks immediately, matching
	// the paper's behaviour for its injected events.
	ConfirmDown int

	current   int
	downTicks int
}

// NewPlanner returns a planner with the paper's §IV-C parameters for a
// platform of totalNodes, starting with start candidates.
func NewPlanner(totalNodes, start int) *Planner {
	return &Planner{
		Rules:       DefaultRules(),
		TotalNodes:  totalNodes,
		MinNodes:    1,
		CheckPeriod: 600,
		Lookahead:   1200,
		StepUp:      2,
		StepDown:    4,
		ConfirmDown: 1,
		current:     start,
	}
}

// Validate reports configuration errors.
func (p *Planner) Validate() error {
	if err := p.Rules.Validate(); err != nil {
		return err
	}
	switch {
	case p.TotalNodes <= 0:
		return fmt.Errorf("provision: planner needs nodes")
	case p.CheckPeriod <= 0 || p.Lookahead < 0:
		return fmt.Errorf("provision: non-positive periods")
	case p.StepUp <= 0 || p.StepDown <= 0:
		return fmt.Errorf("provision: steps must be positive")
	case p.current < 0 || p.current > p.TotalNodes:
		return fmt.Errorf("provision: start pool %d outside [0,%d]", p.current, p.TotalNodes)
	}
	return nil
}

// Current returns the current candidate-pool size.
func (p *Planner) Current() int { return p.current }

// Decision is the outcome of one check.
type Decision struct {
	At         float64
	Status     Status // status in force now
	RuleNow    string // matched rule for the current status
	TargetNow  int    // quota from the current status
	TargetNext int    // quota from the best future event in the horizon (= TargetNow if none)
	Pool       int    // pool size after applying this decision
	Changed    int    // signed change applied
}

// Check runs one planning step at time now against the store (plan
// timestamps are in the same second timeline). It returns the decision
// taken; apply the pool change via the caller's orchestration (boot /
// drain+shutdown).
func (p *Planner) Check(now float64, store *Store) Decision {
	st := p.statusAt(store, int64(now))
	targetNow := p.Rules.Quota(st, p.TotalNodes, p.MinNodes)

	// Upward pre-ramp: find the largest future quota within the
	// horizon and when it starts, then begin stepping early enough to
	// arrive on time.
	targetNext := targetNow
	desired := targetNow
	for _, rec := range store.Window(int64(now)+1, int64(now+p.Lookahead)) {
		if rec.Unexpected {
			continue // §IV-C: unexpected events are not forecastable
		}
		futureTarget := p.Rules.Quota(statusOf(rec), p.TotalNodes, p.MinNodes)
		if futureTarget <= p.current || futureTarget <= targetNow {
			continue
		}
		if futureTarget > targetNext {
			targetNext = futureTarget
		}
		stepsNeeded := ceilDiv(futureTarget-p.current, p.StepUp)
		rampStart := float64(rec.Value) - float64(stepsNeeded-1)*p.CheckPeriod
		if now >= rampStart-1e-9 && futureTarget > desired {
			desired = futureTarget
		}
	}

	next := p.current
	switch {
	case desired > p.current:
		p.downTicks = 0
		next = p.current + p.StepUp
		if next > desired {
			next = desired
		}
	case desired < p.current:
		p.downTicks++
		confirm := p.ConfirmDown
		if confirm < 1 {
			confirm = 1
		}
		if p.downTicks >= confirm {
			next = p.current - p.StepDown
			if next < desired {
				next = desired
			}
		}
	default:
		p.downTicks = 0
	}
	d := Decision{
		At:         now,
		Status:     st,
		RuleNow:    p.Rules.Match(st),
		TargetNow:  targetNow,
		TargetNext: targetNext,
		Pool:       next,
		Changed:    next - p.current,
	}
	p.current = next
	return d
}

// statusAt reads the status in force; with no record yet, it assumes
// the safest state (regular cost, in-range temperature).
func (p *Planner) statusAt(store *Store, t int64) Status {
	rec, ok := store.At(t)
	if !ok {
		return Status{Temperature: 20, Cost: 1.0}
	}
	return statusOf(rec)
}

// statusOf projects a plan record onto the rule inputs.
func statusOf(rec Record) Status {
	return Status{Temperature: rec.Temperature, Cost: rec.Cost, Carbon: rec.Carbon, DemandFlops: rec.DemandFlops}
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
