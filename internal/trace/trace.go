// Package trace records structured simulation events and exports the
// paper's figures as machine-readable artifacts (JSON lines and CSV)
// for external plotting — the role the GRID'5000 measurement logs
// played for the original evaluation.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"greensched/internal/sim"
)

// Kind classifies an event.
type Kind string

// Event kinds.
const (
	KindSubmit  Kind = "submit"
	KindStart   Kind = "start"
	KindFinish  Kind = "finish"
	KindSample  Kind = "sample"
	KindPool    Kind = "pool"
	KindMeasure Kind = "measure"
)

// Event is one timestamped record.
type Event struct {
	T      float64           `json:"t"`
	Kind   Kind              `json:"kind"`
	Node   string            `json:"node,omitempty"`
	TaskID int               `json:"task,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Log is an append-only event collection. The zero value is ready.
type Log struct {
	events []Event
}

// Add appends an event.
func (l *Log) Add(e Event) { l.events = append(l.events, e) }

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the events sorted by time (stable on ties).
func (l *Log) Events() []Event {
	out := append([]Event(nil), l.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Filter returns events of one kind, time-sorted.
func (l *Log) Filter(k Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL streams the log as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSON-lines stream back into a log.
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	l := &Log{}
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		l.Add(e)
	}
	return l, nil
}

// FromResult converts a placement simulation result into a trace log.
func FromResult(res *sim.Result) *Log {
	l := &Log{}
	for _, rec := range res.Records {
		attrs := map[string]string{"cluster": rec.Cluster}
		l.Add(Event{T: rec.Submit, Kind: KindSubmit, TaskID: rec.ID, Attrs: attrs})
		l.Add(Event{T: rec.Start, Kind: KindStart, Node: rec.Server, TaskID: rec.ID, Attrs: attrs})
		l.Add(Event{T: rec.Finish, Kind: KindFinish, Node: rec.Server, TaskID: rec.ID,
			Value: rec.MeanPowerW, Attrs: attrs})
	}
	for _, p := range res.Series {
		l.Add(Event{T: p.T, Kind: KindSample, Value: p.W})
	}
	return l
}

// FromAdaptive converts an adaptive run into a trace log.
func FromAdaptive(res *sim.AdaptiveResult) *Log {
	l := &Log{}
	for _, s := range res.Samples {
		l.Add(Event{T: s.T, Kind: KindSample, Value: s.AvgW,
			Attrs: map[string]string{"running": fmt.Sprint(s.Running)}})
		l.Add(Event{T: s.T, Kind: KindPool, Value: float64(s.Candidates)})
	}
	for _, d := range res.Decisions {
		l.Add(Event{T: d.At, Kind: KindMeasure, Value: d.Status.Temperature,
			Attrs: map[string]string{"rule": d.RuleNow, "cost": fmt.Sprintf("%.2f", d.Status.Cost)}})
	}
	return l
}

// TasksPerNodeCSV renders the Figures 2-4 data (node,tasks).
func TasksPerNodeCSV(res *sim.Result, nodeOrder []string) string {
	var b strings.Builder
	b.WriteString("node,tasks\n")
	for _, n := range nodeOrder {
		fmt.Fprintf(&b, "%s,%d\n", n, res.PerNodeTasks[n])
	}
	return b.String()
}

// ClusterEnergyCSV renders the Figure 5 data (cluster,joules).
func ClusterEnergyCSV(res *sim.Result, clusterOrder []string) string {
	var b strings.Builder
	b.WriteString("cluster,energy_j\n")
	for _, c := range clusterOrder {
		fmt.Fprintf(&b, "%s,%.1f\n", c, res.PerClusterEnergy[c])
	}
	return b.String()
}

// AdaptiveCSV renders the Figure 9 data (minute,candidates,avg_w).
func AdaptiveCSV(res *sim.AdaptiveResult) string {
	var b strings.Builder
	b.WriteString("minute,candidates,avg_w,running\n")
	for _, s := range res.Samples {
		fmt.Fprintf(&b, "%.0f,%d,%.1f,%d\n", s.T/60, s.Candidates, s.AvgW, s.Running)
	}
	return b.String()
}

// GanttRow is one task execution interval for timeline rendering.
type GanttRow struct {
	Node   string
	TaskID int
	Start  float64
	End    float64
}

// Gantt extracts per-node execution intervals, ordered by node then
// start time — the raw material for utilization timelines.
func Gantt(res *sim.Result) []GanttRow {
	rows := make([]GanttRow, 0, len(res.Records))
	for _, rec := range res.Records {
		rows = append(rows, GanttRow{Node: rec.Server, TaskID: rec.ID, Start: rec.Start, End: rec.Finish})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Node != rows[j].Node {
			return rows[i].Node < rows[j].Node
		}
		return rows[i].Start < rows[j].Start
	})
	return rows
}

// Utilization computes the busy-core integral per node divided by the
// makespan — the per-node utilization summary used in reports.
func Utilization(res *sim.Result, cores map[string]int) map[string]float64 {
	if res.Makespan <= 0 {
		return nil
	}
	busy := map[string]float64{}
	for _, rec := range res.Records {
		busy[rec.Server] += rec.Finish - rec.Start
	}
	out := map[string]float64{}
	for node, sec := range busy {
		c := cores[node]
		if c <= 0 {
			c = 1
		}
		out[node] = sec / (res.Makespan * float64(c))
	}
	return out
}
