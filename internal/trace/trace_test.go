package trace

import (
	"sort"
	"strings"
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/provision"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

func placementResult(t *testing.T) *sim.Result {
	t.Helper()
	tasks, err := workload.BurstThenRate{Total: 30, Burst: 4, Rate: 1, Ops: 2e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Platform:    cluster.MustPlatform(cluster.NewNodes("taurus", 2), cluster.NewNodes("sagittaire", 2)),
		Policy:      sched.New(sched.Power),
		Tasks:       tasks,
		Explore:     true,
		Seed:        1,
		SampleEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func adaptiveResult(t *testing.T) *sim.AdaptiveResult {
	t.Helper()
	store := provision.NewStore()
	store.Put(provision.Record{Value: 0, Cost: 0.5, Temperature: 22})
	res, err := sim.RunAdaptive(sim.AdaptiveConfig{
		Platform: cluster.PaperPlatform(),
		Planner:  provision.NewPlanner(12, 4),
		Store:    store,
		Policy:   sched.New(sched.GreenPerf),
		TaskOps:  1.8e12,
		Horizon:  3600,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLogOrderingAndFilter(t *testing.T) {
	l := &Log{}
	l.Add(Event{T: 5, Kind: KindFinish, TaskID: 1})
	l.Add(Event{T: 1, Kind: KindSubmit, TaskID: 1})
	l.Add(Event{T: 3, Kind: KindStart, TaskID: 1})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	evs := l.Events()
	if !sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].T < evs[j].T }) {
		t.Fatal("Events not time-sorted")
	}
	starts := l.Filter(KindStart)
	if len(starts) != 1 || starts[0].T != 3 {
		t.Fatalf("Filter = %+v", starts)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := &Log{}
	l.Add(Event{T: 1, Kind: KindSubmit, TaskID: 7, Attrs: map[string]string{"cluster": "taurus"}})
	l.Add(Event{T: 2, Kind: KindSample, Value: 123.5})
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "\n") != 2 {
		t.Fatalf("JSONL = %q", b.String())
	}
	back, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost events: %d", back.Len())
	}
	if back.Events()[0].Attrs["cluster"] != "taurus" {
		t.Fatal("attrs lost")
	}
	if _, err := ReadJSONL(strings.NewReader("{bad json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFromResultCompleteness(t *testing.T) {
	res := placementResult(t)
	l := FromResult(res)
	if len(l.Filter(KindSubmit)) != res.Completed {
		t.Fatal("submit events missing")
	}
	if len(l.Filter(KindStart)) != res.Completed {
		t.Fatal("start events missing")
	}
	if len(l.Filter(KindFinish)) != res.Completed {
		t.Fatal("finish events missing")
	}
	if len(l.Filter(KindSample)) != len(res.Series) {
		t.Fatal("sample events missing")
	}
	// Every finish carries power and cluster.
	for _, e := range l.Filter(KindFinish) {
		if e.Value <= 0 || e.Attrs["cluster"] == "" {
			t.Fatalf("finish event incomplete: %+v", e)
		}
	}
}

func TestFromAdaptive(t *testing.T) {
	res := adaptiveResult(t)
	l := FromAdaptive(res)
	if len(l.Filter(KindPool)) != len(res.Samples) {
		t.Fatal("pool events missing")
	}
	if len(l.Filter(KindMeasure)) != len(res.Decisions) {
		t.Fatal("measure events missing")
	}
}

func TestCSVExports(t *testing.T) {
	res := placementResult(t)
	nodes := []string{"taurus-0", "taurus-1", "sagittaire-0", "sagittaire-1"}
	csv := TasksPerNodeCSV(res, nodes)
	if !strings.HasPrefix(csv, "node,tasks\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if strings.Count(csv, "\n") != 5 {
		t.Fatalf("csv rows wrong:\n%s", csv)
	}
	ce := ClusterEnergyCSV(res, []string{"taurus", "sagittaire"})
	if !strings.Contains(ce, "taurus,") || !strings.Contains(ce, "sagittaire,") {
		t.Fatalf("cluster csv wrong:\n%s", ce)
	}
	ad := AdaptiveCSV(adaptiveResult(t))
	if !strings.HasPrefix(ad, "minute,candidates,avg_w,running\n") {
		t.Fatalf("adaptive csv wrong: %q", ad)
	}
}

func TestGanttOrderedNonOverlappingPerCore(t *testing.T) {
	res := placementResult(t)
	rows := Gantt(res)
	if len(rows) != res.Completed {
		t.Fatalf("gantt rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Node < rows[i-1].Node {
			t.Fatal("gantt not node-sorted")
		}
		if rows[i].Node == rows[i-1].Node && rows[i].Start < rows[i-1].Start {
			t.Fatal("gantt not start-sorted within node")
		}
	}
}

func TestUtilizationBounded(t *testing.T) {
	res := placementResult(t)
	cores := map[string]int{"taurus-0": 12, "taurus-1": 12, "sagittaire-0": 2, "sagittaire-1": 2}
	u := Utilization(res, cores)
	if len(u) == 0 {
		t.Fatal("no utilization computed")
	}
	for node, v := range u {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("node %s utilization %v outside [0,1]", node, v)
		}
	}
	// Unknown cores default to 1 (no division by zero).
	u2 := Utilization(res, nil)
	for _, v := range u2 {
		if v < 0 {
			t.Fatal("negative utilization")
		}
	}
	if Utilization(&sim.Result{}, nil) != nil {
		t.Fatal("empty result should yield nil")
	}
}
