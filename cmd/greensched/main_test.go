package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greensched/internal/cluster"
	"greensched/internal/journal"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/powerd"
)

// TestCarbonCommandSmoke runs the carbon study end-to-end through the
// CLI dispatch on a tiny scenario and checks it produces the report.
func TestCarbonCommandSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"carbon", "-days", "1", "-burst", "24", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CARBON+WINDOWS", "GREENPERF+IDLE", "CO2 saving", "per-site CO2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestReplaySmoke drives the replay command with a generated trace
// file, including the CARBON policy gate.
func TestReplaySmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	traceData := "# submit_seconds,ops\n0,4.5e11\n1,4.5e11\n2,4.5e11,0.5\n"
	if err := os.WriteFile(path, []byte(traceData), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"replay", "-trace", path, "-policy", "CARBON"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "replayed 3 tasks under CARBON") {
		t.Errorf("unexpected replay output:\n%s", b.String())
	}
}

// TestReplaySLATrace replays a trace carrying the SLA columns under
// the RENEWABLE policy — both PR additions through one CLI pass.
func TestReplaySLATrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	traceData := "# submit,ops,pref,deadline,value,class\n" +
		"0,4.5e11,0,600,0.5,deadline\n1,4.5e11\n2,4.5e11,0,0,2,interactive\n"
	if err := os.WriteFile(path, []byte(traceData), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"replay", "-trace", path, "-policy", "RENEWABLE"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "replayed 3 tasks under RENEWABLE") {
		t.Errorf("unexpected replay output:\n%s", b.String())
	}
}

// TestSLACommandSmoke runs the SLA study end-to-end through the CLI
// dispatch and checks the headline report renders.
func TestSLACommandSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"sla", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"ENERGY-ONLY", "SLA-AWARE", "SLA+CARBON", "Per-class ledger"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPreemptCommandSmoke runs the preemption study end-to-end through
// the CLI dispatch and checks the headline report renders.
func TestPreemptCommandSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"preempt", "-seed", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"EXPRESS-BOOT", "PREEMPTION", "Victim misses", "recovers"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestScenarioCommandSmoke runs the composed module-stack study
// end-to-end through the CLI dispatch and checks the headline report
// renders.
func TestScenarioCommandSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"scenario", "-seed", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CARBON-BLIND", "COMPOSED", "Victim misses", "Budget", "metered"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLiveCommandSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"live"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"IN-PROCESS", "TCP", "Deferred", "Earned", "LIVE serving path"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLiveCommandObservability runs the live study with the fleet
// telemetry flags: the /metrics endpoint must serve parseable
// exposition text while the study runs, and -trace must leave a valid
// JSONL lifecycle stream covering both transports.
func TestLiveCommandObservability(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "live.jsonl")
	var b strings.Builder
	if err := run([]string{"live", "-metrics", "127.0.0.1:0", "-trace", tracePath}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"serving /metrics", "lifecycle trace written"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	srcs := map[string]bool{}
	kinds := map[string]bool{}
	for _, ev := range events {
		srcs[ev.Src] = true
		kinds[ev.Event] = true
	}
	for _, src := range []string{"live-IN-PROCESS", "live-TCP"} {
		if !srcs[src] {
			t.Errorf("trace missing events from %s (got %v)", src, srcs)
		}
	}
	for _, kind := range []string{obs.EventSubmit, obs.EventComplete, obs.EventReject, obs.EventDefer} {
		if !kinds[kind] {
			t.Errorf("trace missing %s events (got %v)", kind, kinds)
		}
	}
}

// TestLiveCommandSpans runs the live study with -spans and feeds the
// resulting stream back through the spans analyzer subcommand with the
// completeness gate on — the whole tracing loop through one CLI.
func TestLiveCommandSpans(t *testing.T) {
	dir := t.TempDir()
	spansPath := filepath.Join(dir, "spans.jsonl")
	var b strings.Builder
	if err := run([]string{"live", "-spans", spansPath}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "request span trees written") {
		t.Errorf("live output does not mention the span file:\n%s", b.String())
	}
	b.Reset()
	if err := run([]string{"spans", "-check", spansPath}, &b); err != nil {
		t.Fatalf("spans -check rejected the live stream: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"Per-stage latency", "Critical path", "full [submit elect dispatch queue solve reply] lifecycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("spans output missing %q:\n%s", want, out)
		}
	}
}

// TestSpansCommand pins the analyzer subcommand's contract on a small
// hand-written stream: the report renders, the completeness gate fails
// a truncated successful trace, and bad invocations error.
func TestSpansCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	stream := `{"trace":1,"span":1,"name":"submit","src":"m","dur_sec":0.01}
{"trace":1,"span":2,"parent":1,"name":"elect","src":"m","dur_sec":0.002}
`
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"spans", path}, &b); err != nil {
		t.Fatalf("plain analysis failed: %v", err)
	}
	for _, want := range []string{"Per-stage latency", "submit", "critical="} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("spans output missing %q:\n%s", want, b.String())
		}
	}
	// The same stream fails -check: the trace succeeded but never
	// dispatched.
	b.Reset()
	err := run([]string{"spans", "-check", path}, &b)
	if err == nil || !strings.Contains(err.Error(), "missing stage") {
		t.Errorf("incomplete trace passed -check: %v", err)
	}

	if err := run([]string{"spans"}, &b); err == nil {
		t.Error("spans without a file must fail")
	}
	if err := run([]string{"spans", filepath.Join(dir, "nope.jsonl")}, &b); err == nil {
		t.Error("spans on a missing file must fail")
	}
	garbled := filepath.Join(dir, "garbled.jsonl")
	if err := os.WriteFile(garbled, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"spans", garbled}, &b); err == nil {
		t.Error("unparseable stream accepted")
	}
}

// TestScenarioCommandTasks pins the -tasks flag through the dispatch:
// the composed study's report title carries the scaled mix, so the
// proportional-rescale arithmetic (base 390 → 60, every stream >= 1)
// is asserted end-to-end.
func TestScenarioCommandTasks(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"scenario", "-seed", "1", "-tasks", "60"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"36 batch + 3 deadline (+1 hopeless) + 18 interactive", "COMPOSED", "CARBON-BLIND"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLiveCommandTasksConcurrency drives the live study through the
// dispatch with a doubled request mix under a bounded-admission master:
// the expected-dollar line proves -tasks reached the config (13 → 26
// doubles every stream, so the ledger expectation is $16.40), and the
// run completing proves WithConcurrency held under the full stack.
func TestLiveCommandTasksConcurrency(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"live", "-tasks", "26", "-concurrency", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"expected $16.40", "IN-PROCESS", "TCP", "LIVE serving path"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// A negative bound must be rejected before any SED spins up.
	if err := run([]string{"live", "-concurrency", "-2"}, &b); err == nil || !strings.Contains(err.Error(), "concurrency") {
		t.Errorf("negative -concurrency accepted: %v", err)
	}
}

// TestScenarioCommandTrace writes the composed sim run's lifecycle
// trace and checks it parses with the same schema the live path emits.
func TestScenarioCommandTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "scenario.jsonl")
	var b strings.Builder
	if err := run([]string{"scenario", "-seed", "1", "-trace", tracePath}, &b); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty lifecycle trace")
	}
	for _, ev := range events[:min(len(events), 50)] {
		if ev.Src != "sim" || ev.Event == "" {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
}

// TestLiveCommandJournal runs the live study with -journal and feeds
// each transport's WAL back through the journal inspect subcommand:
// every admitted lifecycle settled (batch via a deferral, hopeless via
// a rejection), so the incomplete set is empty and the tail is clean.
func TestLiveCommandJournal(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "live")
	var b strings.Builder
	if err := run([]string{"live", "-journal", prefix}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dispatch journals written to") {
		t.Errorf("live output does not mention the journal files:\n%s", b.String())
	}
	for _, wal := range []string{prefix + ".in-process.wal", prefix + ".tcp.wal"} {
		b.Reset()
		if err := run([]string{"journal", wal}, &b); err != nil {
			t.Fatalf("journal %s: %v", wal, err)
		}
		out := b.String()
		for _, want := range []string{"admitted", "deferred", "completed", "rejected", "incomplete: 0", "clean tail"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s inspect missing %q:\n%s", wal, want, out)
			}
		}
		if strings.Contains(out, "failed") || strings.Contains(out, "torn tail") {
			t.Errorf("%s inspect reports failures or a torn tail on a clean run:\n%s", wal, out)
		}
	}
}

// TestJournalCommand pins the inspector's contract on a hand-built
// WAL: a leased lifecycle shows in the incomplete set with its owner,
// trailing garbage is reported as a torn tail, the file itself is not
// modified (inspection is read-only), and bad invocations error.
func TestJournalCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "master.wal")
	j, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(journal.Record{ID: 1, Service: "compute", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(journal.Record{ID: 2, Service: "compute", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Lease(2, "sed-a", 30); err != nil {
		t.Fatal(err)
	}
	if err := j.Settle(1, journal.StateCompleted, 1, 0.5, 10, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn mid-append")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := run([]string{"journal", path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"4 records over 2 lifecycles",
		"incomplete: 1 of 2",
		"leased to sed-a",
		"torn tail",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect missing %q:\n%s", want, out)
		}
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Errorf("inspection changed the file: %d -> %d bytes", before.Size(), after.Size())
	}

	if err := run([]string{"journal"}, &b); err == nil {
		t.Error("journal without a file must fail")
	}
	if err := run([]string{"journal", filepath.Join(dir, "nope.wal")}, &b); err == nil {
		t.Error("journal on a missing file must fail")
	}
}

// TestDurableCommandSmoke runs the kill/restart drill through the CLI
// dispatch with a kept directory: the report renders and the .wal
// files survive for `greensched journal`.
func TestDurableCommandSmoke(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"durable", dir}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Durable dispatch", "kill+restart", "redone on", "dispatch journals kept under"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	wals, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no .wal files kept in %s (%v)", dir, err)
	}
}

// powerdHold starts `greensched powerd` through the dispatch in a
// goroutine (held up by -hold) and returns a channel carrying its exit
// error. The builder must not be read before the channel delivers.
func powerdHold(args []string, b *strings.Builder) <-chan error {
	done := make(chan error, 1)
	go func() { done <- run(args, b) }()
	return done
}

// awaitReading polls the client until the sidecar answers, failing the
// test if it never comes up.
func awaitReading(t *testing.T, cli *powerd.Client, node string, metrics []string, values []float64) power.Watts {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if w, ok := cli.NodePowerW(node, metrics, values); ok {
			return w
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sidecar never answered for node %s", node)
	return 0
}

// TestPowerdCommandSmoke starts the reference sidecar through the CLI
// dispatch on a unix socket, completes a live protocol exchange against
// the default analytic-curve model while -hold keeps it serving, and
// checks the banner and exit report.
func TestPowerdCommandSmoke(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "powerd.sock")
	var b strings.Builder
	done := powerdHold([]string{"powerd", "-listen", "unix:" + sock, "-hold", "1.5"}, &b)

	cli, err := powerd.NewClient(powerd.Config{Addr: "unix:" + sock, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	got := awaitReading(t, cli, "taurus-0", []string{power.MetricUtil}, []float64{0.5})
	spec, ok := cluster.Spec("taurus")
	if !ok {
		t.Fatal("no taurus in the catalog")
	}
	if want := spec.PowerModel().Power(power.On, 0.5); got != want {
		t.Errorf("taurus-0 at util 0.5: got %v W, want %v W", got, want)
	}
	// A node outside Table I is served by the generic default curve.
	if w := awaitReading(t, cli, "lean", []string{power.MetricUtil}, []float64{0}); w != 100 {
		t.Errorf("unknown node idle draw: got %v W, want the generic 100 W", w)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"serving power protocol v1", "unix:" + sock, "(model curve)", "powerd: answered"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPowerdCommandTrace serves a recorded node,t,watts CSV through the
// dispatch: time-keyed lookups answer with the traced figures and the
// banner names the trace model.
func TestPowerdCommandTrace(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "power.csv")
	csv := "node,t,watts\nlean,0,80\nlean,10,91\nhungry,0,320\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "powerd.sock")
	var b strings.Builder
	done := powerdHold([]string{"powerd", "-listen", "unix:" + sock, "-trace", csvPath, "-hold", "1.5"}, &b)

	cli, err := powerd.NewClient(powerd.Config{Addr: "unix:" + sock, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if w := awaitReading(t, cli, "lean", []string{power.MetricTime}, []float64{5}); w != 80 {
		t.Errorf("lean at t=5: got %v W, want the traced 80 W", w)
	}
	if w := awaitReading(t, cli, "lean", []string{power.MetricTime}, []float64{12}); w != 91 {
		t.Errorf("lean at t=12: got %v W, want the traced 91 W", w)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"replaying 2 traced nodes", "(model trace)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPowerdCommandErrors pins the failure paths: an unlistenable
// address and a missing trace file both fail before serving.
func TestPowerdCommandErrors(t *testing.T) {
	var b strings.Builder
	bad := filepath.Join(t.TempDir(), "no-such-dir", "powerd.sock")
	if err := run([]string{"powerd", "-listen", "unix:" + bad, "-hold", "0.01"}, &b); err == nil {
		t.Error("unlistenable address accepted")
	}
	missing := filepath.Join(t.TempDir(), "nope.csv")
	if err := run([]string{"powerd", "-trace", missing, "-hold", "0.01"}, &b); err == nil {
		t.Error("missing trace file accepted")
	}
}

// TestLiveCommandExternalPower points the live study at a powerd
// sidecar through -power: the per-transport report lines carry the
// sidecar request counts with zero fallbacks, and the sidecar actually
// answered on the wire.
func TestLiveCommandExternalPower(t *testing.T) {
	addr := "unix:" + filepath.Join(t.TempDir(), "powerd.sock")
	srv, err := powerd.Serve(addr, power.StaticSource{"lean": 80, "hungry": 320}, powerd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var b strings.Builder
	if err := run([]string{"live", "-power", addr}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"external power", "0 fallbacks (breaker open: false)", "LIVE serving path"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if srv.Requests() == 0 {
		t.Error("sidecar never queried over the wire")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestUnknownCommandAndMissingArgs(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err != errUsage {
		t.Errorf("no args: %v, want errUsage", err)
	}
	// An unknown subcommand must not fall through silently: the error
	// names the command the user typed.
	err := run([]string{"frobnicate"}, &b)
	if err == nil {
		t.Fatal("unknown command accepted")
	}
	if err == errUsage {
		t.Error("unknown command collapsed into the bare usage error")
	}
	if !strings.Contains(err.Error(), `"frobnicate"`) {
		t.Errorf("unknown-command error %q does not name the command", err)
	}
	if err := run([]string{"replay"}, &b); err == nil {
		t.Error("replay without -trace must fail")
	}
}

// TestUsageListsScenarioCommand keeps the help text in sync with the
// run() switch: the composed-stack subcommand is documented.
func TestUsageListsScenarioCommand(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"help"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scenario", "carbon + SLA + preemption + budget", "live", "interceptors over", "durable", "journal FILE", "-journal F", "powerd", "power-estimation sidecar", "-power A", "-listen A"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("usage text missing %q:\n%s", want, b.String())
		}
	}
}
