// Command greensched regenerates the paper's evaluation artifacts:
//
//	greensched placement [-seed N] [-static]   Table I/II, Figures 2-5 (§IV-A)
//	greensched greenperf [-seed N]             Figures 6-7, Table III  (§IV-B)
//	greensched adaptive  [-seed N]             Figures 8-9             (§IV-C)
//	greensched replicate [-seeds N]            Table II across seeds, mean ± CI
//	greensched all       [-seed N]             everything above
//
// Output is written to stdout as ASCII tables/figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"greensched/internal/cluster"
	"greensched/internal/experiments"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/trace"
	"greensched/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "deterministic simulation seed")
	static := fs.Bool("static", false, "use the static (initial benchmark) estimation approach instead of dynamic learning")
	csvDir := fs.String("csv", "", "also export figure data as CSV files into this directory")
	traceFile := fs.String("trace", "", "replay: submission trace file (submit_seconds,ops[,preference] lines)")
	seeds := fs.Int("seeds", 10, "replicate: number of independent seeds")
	policyName := fs.String("policy", "GREENPERF", "replay: scheduling policy (RANDOM|POWER|PERFORMANCE|GREENPERF)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	var err error
	switch cmd {
	case "placement":
		err = runPlacement(*seed, *static, *csvDir)
	case "greenperf":
		err = runGreenPerf(*seed)
	case "adaptive":
		err = runAdaptive(*seed, *csvDir)
	case "extensions":
		err = experiments.RenderExtensions(os.Stdout, *seed)
	case "replicate":
		err = runReplicate(*seed, *seeds, *static)
	case "consolidation":
		cfg := experiments.DefaultConsolidationConfig()
		cfg.Seed = *seed
		var res *experiments.ConsolidationResult
		if res, err = experiments.RunConsolidation(cfg); err == nil {
			err = res.Render(os.Stdout)
		}
	case "replay":
		err = runReplay(*traceFile, *policyName, *seed)
	case "all":
		if err = runPlacement(*seed, *static, *csvDir); err == nil {
			fmt.Println()
			if err = runGreenPerf(*seed); err == nil {
				fmt.Println()
				if err = runAdaptive(*seed, *csvDir); err == nil {
					fmt.Println()
					err = experiments.RenderExtensions(os.Stdout, *seed)
				}
			}
		}
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "greensched: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "greensched: %v\n", err)
		os.Exit(1)
	}
}

func runPlacement(seed int64, static bool, csvDir string) error {
	cfg := experiments.DefaultPlacementConfig()
	cfg.Seed = seed
	cfg.Static = static
	res, err := experiments.RunPlacement(cfg)
	if err != nil {
		return err
	}
	if err := res.Render(os.Stdout); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	nodes := make([]string, 0, len(res.Platform.Nodes))
	for _, n := range res.Platform.Nodes {
		nodes = append(nodes, n.Name)
	}
	files := map[string]string{
		"fig2_power_tasks.csv":       trace.TasksPerNodeCSV(res.Runs[sched.Power], nodes),
		"fig3_performance_tasks.csv": trace.TasksPerNodeCSV(res.Runs[sched.Performance], nodes),
		"fig4_random_tasks.csv":      trace.TasksPerNodeCSV(res.Runs[sched.Random], nodes),
		"fig5_power_energy.csv":      trace.ClusterEnergyCSV(res.Runs[sched.Power], res.Platform.Clusters()),
		"fig5_random_energy.csv":     trace.ClusterEnergyCSV(res.Runs[sched.Random], res.Platform.Clusters()),
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(csvDir, name), []byte(data), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("\nCSV exports written to %s\n", csvDir)
	return nil
}

func runReplay(traceFile, policyName string, seed int64) error {
	if traceFile == "" {
		return fmt.Errorf("replay needs -trace FILE")
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	tasks, err := workload.ParseTrace(f)
	if err != nil {
		return err
	}
	kind := sched.Kind(policyName)
	switch kind {
	case sched.Random, sched.Power, sched.Performance, sched.GreenPerf, sched.LeastLoaded:
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	platform := cluster.PaperPlatform()
	res, err := sim.Run(sim.Config{
		Platform:   platform,
		Policy:     sched.New(kind),
		Tasks:      tasks,
		Explore:    kind != sched.Random,
		Contention: 0.08,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d tasks under %s on the Table I platform\n", res.Completed, res.Policy)
	fmt.Printf("makespan: %.0f s   energy: %.0f J   mean wait: %.1f s\n",
		res.Makespan, res.EnergyJ, res.MeanWait())
	for _, cl := range platform.Clusters() {
		fmt.Printf("  %-12s %4d tasks  %12.0f J\n", cl, res.PerClusterTasks[cl], res.PerClusterEnergy[cl])
	}
	return nil
}

func runReplicate(firstSeed int64, seeds int, static bool) error {
	cfg := experiments.DefaultReplicationConfig()
	cfg.FirstSeed = firstSeed
	cfg.Seeds = seeds
	cfg.Base.Static = static
	res, err := experiments.RunReplication(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runGreenPerf(seed int64) error {
	cfg := experiments.DefaultMetricConfig()
	cfg.Seed = seed
	return experiments.RenderMetricStudy(cfg, os.Stdout)
}

func runAdaptive(seed int64, csvDir string) error {
	cfg := experiments.DefaultAdaptiveConfig()
	cfg.Seed = seed
	if err := experiments.RenderAdaptive(cfg, os.Stdout); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	res, err := experiments.RunAdaptive(cfg)
	if err != nil {
		return err
	}
	path := filepath.Join(csvDir, "fig9_adaptive.csv")
	if err := os.WriteFile(path, []byte(trace.AdaptiveCSV(res)), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nCSV export written to %s\n", path)
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: greensched <command> [flags]

commands:
  placement   §IV-A workload placement: Table I, Figures 2-5, Table II
  greenperf   §IV-B metric study: Figures 6-7, Table III
  adaptive    §IV-C adaptive provisioning: Figures 8-9
  extensions  preference sweep + tariff-following provisioning
  replicate   Table II across seeds: mean ± CI, Welch tests (-seeds N)
  consolidation  related-work baseline: idle shutdown vs always-on
  replay      schedule an external trace (-trace FILE [-policy P])
  all         run every experiment

flags:
  -seed N     deterministic simulation seed (default 1)
  -seeds N    replicate only: number of independent seeds (default 10)
  -static     placement / replicate: static estimation ablation
  -csv DIR    also export figure data as CSV files
`)
}
