// Command greensched regenerates the paper's evaluation artifacts:
//
//	greensched placement [-seed N] [-static]   Table I/II, Figures 2-5 (§IV-A)
//	greensched greenperf [-seed N]             Figures 6-7, Table III  (§IV-B)
//	greensched adaptive  [-seed N]             Figures 8-9             (§IV-C)
//	greensched replicate [-seeds N]            Table II across seeds, mean ± CI
//	greensched carbon    [-days N]             carbon-blind vs carbon-aware study
//	greensched sla       [-seed N]             deadline/value-aware scheduling study
//	greensched preempt   [-seed N]             express-boot vs checkpoint/restart preemption study
//	greensched scenario  [-seed N]             composed module stack: carbon + SLA + preemption + budget in one run
//	greensched live                            composed LIVE middleware interceptor demo (in-process + TCP)
//	greensched powerd [-listen A] [-trace F]   reference power-estimation sidecar (powerd line protocol)
//	greensched durable [DIR]                   kill/restart drill: journaled master, lease redo, exact books
//	greensched journal FILE                    inspect a dispatch journal: counts, incomplete set, torn tail
//	greensched spans FILE [-check]             per-stage latency + critical path of a span JSONL stream
//	greensched all       [-seed N]             every study above (replicate, replay and live excluded)
//
// Output is written to stdout as ASCII tables/figures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"greensched/internal/cluster"
	"greensched/internal/experiments"
	"greensched/internal/journal"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/powerd"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/trace"
	"greensched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			usage(os.Stderr)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "greensched: %v\n", err)
		os.Exit(1)
	}
}

// errUsage asks main for the usage text and exit code 2.
var errUsage = fmt.Errorf("usage")

// run dispatches one CLI invocation, writing all output to out. Tests
// call it directly with a buffer.
func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return errUsage
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "deterministic simulation seed")
	static := fs.Bool("static", false, "use the static (initial benchmark) estimation approach instead of dynamic learning")
	csvDir := fs.String("csv", "", "also export figure data as CSV files into this directory")
	traceFile := fs.String("trace", "", "replay: submission trace file to read; live/scenario: lifecycle JSONL file to write; powerd: node,t,watts power CSV to replay")
	seeds := fs.Int("seeds", 10, "replicate: number of independent seeds")
	policyName := fs.String("policy", "GREENPERF", "replay: scheduling policy (RANDOM|POWER|PERFORMANCE|GREENPERF|LEASTLOADED|CARBON|RENEWABLE)")
	days := fs.Int("days", 2, "carbon: scenario length in days")
	burst := fs.Int("burst", 0, "carbon: deferrable tasks per evening burst (0 = default)")
	metricsAddr := fs.String("metrics", "", "live: serve Prometheus-style /metrics (and pprof) on this host:port for the study's fleet telemetry")
	holdSec := fs.Float64("hold", 0, "live: keep the -metrics endpoint up this many seconds after the study finishes; powerd: serve this many seconds then exit (0 = until interrupted)")
	spansFile := fs.String("spans", "", "live: write per-request span trees to this JSONL file; spans: (unused, pass the file as the argument)")
	check := fs.Bool("check", false, "spans: exit non-zero when any trace fails to parse or misses a canonical stage")
	tasks := fs.Int("tasks", 0, "scenario/live: rescale the task mix to roughly this many tasks total (0 = calibrated default)")
	concurrency := fs.Int("concurrency", 0, "live: bound each master's in-flight admissions (0 = unbounded)")
	journalFile := fs.String("journal", "", "live: append each master's crash-safe dispatch journal under this path prefix")
	listenAddr := fs.String("listen", "127.0.0.1:0", "powerd: serve the power protocol on this address (unix:/path or host:port)")
	powerAddr := fs.String("power", "", "live: read per-node power from a powerd sidecar at this address instead of local meters")
	if err := fs.Parse(args[1:]); err != nil {
		return errUsage
	}

	switch cmd {
	case "placement":
		return runPlacement(out, *seed, *static, *csvDir)
	case "greenperf":
		return runGreenPerf(out, *seed)
	case "adaptive":
		return runAdaptive(out, *seed, *csvDir)
	case "extensions":
		return experiments.RenderExtensions(out, *seed)
	case "replicate":
		return runReplicate(out, *seed, *seeds, *static)
	case "consolidation":
		return runConsolidation(out, *seed)
	case "carbon":
		return runCarbon(out, *seed, *days, *burst)
	case "sla":
		return runSLA(out, *seed)
	case "preempt":
		return runPreempt(out, *seed)
	case "scenario":
		return runScenario(out, *seed, *traceFile, *tasks)
	case "live":
		return runLive(out, *metricsAddr, *traceFile, *spansFile, *journalFile, *powerAddr, *holdSec, *tasks, *concurrency)
	case "powerd":
		return runPowerd(out, *listenAddr, *traceFile, *holdSec)
	case "durable":
		dir := ""
		if fs.NArg() > 0 {
			dir = fs.Arg(0)
		}
		return runDurable(out, dir)
	case "journal":
		if fs.NArg() != 1 {
			return fmt.Errorf("journal needs exactly one dispatch-journal file argument (produced by 'live -journal F' or 'durable')")
		}
		return runJournal(out, fs.Arg(0))
	case "spans":
		if fs.NArg() != 1 {
			return fmt.Errorf("spans needs exactly one JSONL file argument (produced by 'live -spans F' or examples/tracing)")
		}
		return runSpans(out, fs.Arg(0), *check)
	case "replay":
		return runReplay(out, *traceFile, *policyName, *seed)
	case "all":
		// Every study except replicate (its multi-seed sweep is a
		// deliberate, slower invocation) and replay (needs a trace).
		if err := runPlacement(out, *seed, *static, *csvDir); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := runGreenPerf(out, *seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := runAdaptive(out, *seed, *csvDir); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := experiments.RenderExtensions(out, *seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := runConsolidation(out, *seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := runCarbon(out, *seed, *days, *burst); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := runSLA(out, *seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := runPreempt(out, *seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return runScenario(out, *seed, "", 0)
	case "-h", "--help", "help":
		usage(out)
		return nil
	default:
		return fmt.Errorf("unknown command %q (run 'greensched help' for usage)", cmd)
	}
}

func runConsolidation(out io.Writer, seed int64) error {
	cfg := experiments.DefaultConsolidationConfig()
	cfg.Seed = seed
	res, err := experiments.RunConsolidation(cfg)
	if err != nil {
		return err
	}
	return res.Render(out)
}

func runScenario(out io.Writer, seed int64, traceFile string, tasks int) error {
	cfg := experiments.DefaultComposedConfig()
	cfg.SLA.Seed = seed
	cfg.ScaleTasks(tasks)
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Trace = f
	}
	res, err := experiments.RunComposedStudy(cfg)
	if err != nil {
		return err
	}
	if err := res.Render(out); err != nil {
		return err
	}
	if traceFile != "" {
		fmt.Fprintf(out, "\nlifecycle trace (COMPOSED run) written to %s\n", traceFile)
	}
	return nil
}

// runSpans analyzes a span JSONL stream (from 'live -spans F' or the
// tracing example): per-stage latency percentiles and the critical-path
// decomposition of the slowest requests. With check, it additionally
// fails when any trace misses a canonical lifecycle stage.
func runSpans(out io.Writer, path string, check bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		return err
	}
	rep := obs.AnalyzeSpans(spans)
	if err := rep.Render(out); err != nil {
		return err
	}
	if check {
		if err := rep.RequireStages(obs.CanonicalStages...); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nall %d traces carry the full %v lifecycle\n", len(rep.Traces), obs.CanonicalStages)
	}
	return nil
}

// runLive executes the composed LIVE middleware demo. It runs on the
// wall clock (sub-second grid windows, millisecond solves), so it
// takes no seed and is excluded from `all`. With -metrics it serves
// the study's fleet telemetry as a Prometheus-style endpoint (plus
// pprof), and -hold keeps that endpoint up after the study finishes so
// an external scraper can read the final totals; -trace streams both
// masters' lifecycle events to a JSONL file; -spans writes per-request
// span trees for `greensched spans`. -tasks rescales the request mix
// (proportionally, each class keeps at least one request) and
// -concurrency bounds each master's in-flight admissions — together
// they turn the demo into a load generator for the concurrent master.
// -journal mounts a crash-safe dispatch journal under each master and
// leaves the .wal files behind for `greensched journal`.
// -power routes every power reading through an external powerd sidecar
// (start one with 'greensched powerd'); if the sidecar dies mid-study
// the stack trips to the built-in analytic curves and keeps electing.
func runLive(out io.Writer, metricsAddr, traceFile, spansFile, journalFile, powerAddr string, holdSec float64, tasks, concurrency int) error {
	cfg := experiments.DefaultLiveComposedConfig()
	cfg.ScaleTasks(tasks)
	cfg.Concurrency = concurrency
	cfg.JournalPath = journalFile
	cfg.PowerAddr = powerAddr
	var srv *obs.Server
	if metricsAddr != "" {
		cfg.Registry = obs.NewRegistry()
		var err error
		srv, err = obs.ListenAndServe(metricsAddr, cfg.Registry)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "serving /metrics and /debug/pprof on http://%s\n\n", srv.Addr())
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceW = f
	}
	if spansFile != "" {
		f, err := os.Create(spansFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.SpanW = f
	}
	res, err := experiments.RunLiveComposedStudy(cfg)
	if err != nil {
		return err
	}
	if err := res.Render(out); err != nil {
		return err
	}
	if traceFile != "" {
		fmt.Fprintf(out, "\nlifecycle trace written to %s\n", traceFile)
	}
	if spansFile != "" {
		fmt.Fprintf(out, "\nrequest span trees written to %s (analyze with 'greensched spans %s')\n", spansFile, spansFile)
	}
	if journalFile != "" {
		fmt.Fprintf(out, "\ndispatch journals written to %s.{in-process,tcp}.wal (inspect with 'greensched journal FILE')\n", journalFile)
	}
	if srv != nil && holdSec > 0 {
		fmt.Fprintf(out, "\nholding the metrics endpoint for %.0fs (http://%s/metrics)\n", holdSec, srv.Addr())
		time.Sleep(time.Duration(holdSec * float64(time.Second)))
	}
	return nil
}

// runPowerd runs the reference power-estimation sidecar: it answers
// the powerd line protocol (one JSON object per line, protocol v1) on
// -listen until -hold seconds elapse (0 = until interrupted). The
// default model serves the Table I analytic curves evaluated at the
// caller-reported utilization, with a generic lean-server curve for
// nodes outside the catalog; -trace replaces it with a recorded
// "node,t,watts" CSV replayed against the caller's clock. Point a
// scheduler at it with 'greensched live -power ADDR'.
func runPowerd(out io.Writer, listen, traceFile string, holdSec float64) error {
	var src power.Source
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		m, err := powerd.ParseTraceCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "replaying %d traced nodes from %s\n", len(m.Nodes()), traceFile)
		src = m
	} else {
		curves := power.CurveSource{
			Nodes:   make(map[string]power.Model),
			Default: power.LinearModel{IdleW: 100, PeakW: 250, ActivationW: 10, BootW: 125, OffW: 8},
		}
		for _, n := range cluster.PaperPlatform().Nodes {
			curves.Nodes[n.Name] = n.PowerModel()
		}
		src = curves
	}
	srv, err := powerd.Serve(listen, src, powerd.Options{})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "powerd: serving power protocol v%d on %s (model %s)\n",
		powerd.ProtocolVersion, srv.Addr(), srv.Model())
	if holdSec > 0 {
		time.Sleep(time.Duration(holdSec * float64(time.Second)))
	} else {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt)
		defer signal.Stop(stop)
		<-stop
	}
	fmt.Fprintf(out, "powerd: answered %d requests\n", srv.Requests())
	return nil
}

// runDurable runs the kill/restart drill: a journaled master dies
// mid-run with a lease outstanding and a request parked in a carbon
// window, a fresh incarnation replays the journal, and the report
// compares its books against an uninterrupted control run. With a DIR
// argument the .wal files are kept there for `greensched journal`;
// otherwise they go to a temp dir that is removed afterwards.
func runDurable(out io.Writer, dir string) error {
	keep := dir != ""
	if !keep {
		tmp, err := os.MkdirTemp("", "greensched-durable-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := experiments.DefaultDurableConfig()
	cfg.Dir = dir
	res, err := experiments.RunDurableStudy(cfg)
	if err != nil {
		return err
	}
	if err := res.Render(out); err != nil {
		return err
	}
	if keep {
		fmt.Fprintf(out, "\ndispatch journals kept under %s (inspect with 'greensched journal FILE')\n", dir)
	}
	return nil
}

// runJournal inspects a dispatch journal file read-only: record counts
// by lifecycle state, the incomplete set a restarting master would
// re-drive, and a torn-tail report. It never mutates the file — a torn
// tail is reported, not truncated (opening the journal for writing is
// what repairs it).
func runJournal(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := journal.Recover(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d records over %d lifecycles (%d bytes)\n",
		path, rec.Records, len(rec.Entries), rec.GoodBytes)
	for _, st := range []journal.State{
		journal.StateAdmitted, journal.StateDeferred, journal.StateLeased,
		journal.StateCompleted, journal.StateFailed, journal.StateRejected,
	} {
		if n := rec.Counts[st]; n > 0 {
			fmt.Fprintf(out, "  %-9s %6d records\n", st, n)
		}
	}
	if rec.Orphans > 0 {
		fmt.Fprintf(out, "  orphans   %6d (records whose admission is not in this log)\n", rec.Orphans)
	}

	inc := rec.Incomplete()
	fmt.Fprintf(out, "incomplete: %d of %d lifecycles\n", len(inc), len(rec.Entries))
	for _, e := range inc {
		switch e.State {
		case journal.StateLeased:
			fmt.Fprintf(out, "  #%-6d %-9s %-12s leased to %s until t=%.3f\n",
				e.Admit.ID, e.State, e.Admit.Service, e.SED, e.Expiry)
		default:
			fmt.Fprintf(out, "  #%-6d %-9s %-12s\n", e.Admit.ID, e.State, e.Admit.Service)
		}
	}

	if rec.Truncated {
		fmt.Fprintf(out, "torn tail: %s — good prefix ends at byte %d; a writer reopening this journal truncates there and continues\n",
			rec.Reason, rec.GoodBytes)
	} else {
		fmt.Fprintln(out, "clean tail: the log ends on a frame boundary")
	}
	return nil
}

func runPreempt(out io.Writer, seed int64) error {
	cfg := experiments.DefaultPreemptionConfig()
	cfg.Seed = seed
	res, err := experiments.RunPreemptionStudy(cfg)
	if err != nil {
		return err
	}
	return res.Render(out)
}

func runSLA(out io.Writer, seed int64) error {
	cfg := experiments.DefaultSLAConfig()
	cfg.Seed = seed
	res, err := experiments.RunSLAStudy(cfg)
	if err != nil {
		return err
	}
	return res.Render(out)
}

func runCarbon(out io.Writer, seed int64, days, burst int) error {
	cfg := experiments.DefaultCarbonConfig()
	cfg.Seed = seed
	cfg.Days = days
	if burst > 0 {
		cfg.BurstTasks = burst
	}
	res, err := experiments.RunCarbonStudy(cfg)
	if err != nil {
		return err
	}
	return res.Render(out)
}

func runPlacement(out io.Writer, seed int64, static bool, csvDir string) error {
	cfg := experiments.DefaultPlacementConfig()
	cfg.Seed = seed
	cfg.Static = static
	res, err := experiments.RunPlacement(cfg)
	if err != nil {
		return err
	}
	if err := res.Render(out); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	nodes := make([]string, 0, len(res.Platform.Nodes))
	for _, n := range res.Platform.Nodes {
		nodes = append(nodes, n.Name)
	}
	files := map[string]string{
		"fig2_power_tasks.csv":       trace.TasksPerNodeCSV(res.Runs[sched.Power], nodes),
		"fig3_performance_tasks.csv": trace.TasksPerNodeCSV(res.Runs[sched.Performance], nodes),
		"fig4_random_tasks.csv":      trace.TasksPerNodeCSV(res.Runs[sched.Random], nodes),
		"fig5_power_energy.csv":      trace.ClusterEnergyCSV(res.Runs[sched.Power], res.Platform.Clusters()),
		"fig5_random_energy.csv":     trace.ClusterEnergyCSV(res.Runs[sched.Random], res.Platform.Clusters()),
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(csvDir, name), []byte(data), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "\nCSV exports written to %s\n", csvDir)
	return nil
}

func runReplay(out io.Writer, traceFile, policyName string, seed int64) error {
	if traceFile == "" {
		return fmt.Errorf("replay needs -trace FILE")
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	tasks, err := workload.ParseTrace(f)
	if err != nil {
		return err
	}
	kind := sched.Kind(policyName)
	switch kind {
	case sched.Random, sched.Power, sched.Performance, sched.GreenPerf, sched.LeastLoaded, sched.Carbon, sched.Renewable:
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	platform := cluster.PaperPlatform()
	res, err := sim.Run(sim.Config{
		Platform:   platform,
		Policy:     sched.New(kind),
		Tasks:      tasks,
		Explore:    kind != sched.Random,
		Contention: 0.08,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d tasks under %s on the Table I platform\n", res.Completed, res.Policy)
	fmt.Fprintf(out, "makespan: %.0f s   energy: %.0f J   mean wait: %.1f s\n",
		res.Makespan, res.EnergyJ, res.MeanWait())
	for _, cl := range platform.Clusters() {
		fmt.Fprintf(out, "  %-12s %4d tasks  %12.0f J\n", cl, res.PerClusterTasks[cl], res.PerClusterEnergy[cl])
	}
	return nil
}

func runReplicate(out io.Writer, firstSeed int64, seeds int, static bool) error {
	cfg := experiments.DefaultReplicationConfig()
	cfg.FirstSeed = firstSeed
	cfg.Seeds = seeds
	cfg.Base.Static = static
	res, err := experiments.RunReplication(cfg)
	if err != nil {
		return err
	}
	return res.Render(out)
}

func runGreenPerf(out io.Writer, seed int64) error {
	cfg := experiments.DefaultMetricConfig()
	cfg.Seed = seed
	return experiments.RenderMetricStudy(cfg, out)
}

func runAdaptive(out io.Writer, seed int64, csvDir string) error {
	cfg := experiments.DefaultAdaptiveConfig()
	cfg.Seed = seed
	if err := experiments.RenderAdaptive(cfg, out); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	res, err := experiments.RunAdaptive(cfg)
	if err != nil {
		return err
	}
	path := filepath.Join(csvDir, "fig9_adaptive.csv")
	if err := os.WriteFile(path, []byte(trace.AdaptiveCSV(res)), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nCSV export written to %s\n", path)
	return nil
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: greensched <command> [flags]

commands:
  placement   §IV-A workload placement: Table I, Figures 2-5, Table II
  greenperf   §IV-B metric study: Figures 6-7, Table III
  adaptive    §IV-C adaptive provisioning: Figures 8-9
  extensions  preference sweep + tariff-following provisioning
  replicate   Table II across seeds: mean ± CI, Welch tests (-seeds N)
  consolidation  related-work baseline: idle shutdown vs always-on
  carbon      carbon-blind vs carbon-aware scheduling (-days N [-burst N])
  sla         deadline/value-aware scheduling: energy-only vs SLA-aware vs SLA+carbon
  preempt     checkpoint/restart preemption vs express-boot-only for urgent work
  scenario    composed module stack: carbon + SLA + preemption + budget in one run
  live        composed LIVE middleware: SLA + carbon + budget interceptors over
              in-process and TCP transports (wall clock, no seed)
  powerd      reference power-estimation sidecar: serves the powerd line
              protocol on -listen (analytic curves, or -trace CSV replay)
  durable [DIR]  kill/restart drill: a journaled master dies mid-run, the next
              incarnation replays the journal and redoes the orphaned lease —
              books byte-equal to an uninterrupted control run
  journal FILE  inspect a dispatch journal: record counts by state, the
              incomplete set a restart would re-drive, torn-tail report
  spans FILE  analyze a span JSONL stream: per-stage latency percentiles and
              the critical path of the slowest requests ([-check])
  replay      schedule an external trace (-trace FILE [-policy P])
  all         run every study (replicate, replay and live excluded)

flags:
  -seed N     deterministic simulation seed (default 1)
  -seeds N    replicate only: number of independent seeds (default 10)
  -days N     carbon only: scenario length in days (default 2)
  -burst N    carbon only: deferrable tasks per evening burst
  -static     placement / replicate: static estimation ablation
  -csv DIR    also export figure data as CSV files
  -metrics A  live only: serve /metrics and /debug/pprof on host:port A
  -hold N     live: keep the -metrics endpoint up N seconds after the study;
              powerd: serve N seconds then exit (0 = until interrupted)
  -trace F    replay: read the submission trace from F;
              live/scenario: write lifecycle events to F as JSONL;
              powerd: replay a node,t,watts power CSV instead of curves
  -spans F    live only: write per-request span trees to F as JSONL
  -power A    live only: read per-node power from a powerd sidecar at A,
              falling back to the built-in curves when it is unreachable
  -listen A   powerd only: serve on A — unix:/path or host:port
              (default 127.0.0.1:0)
  -check      spans only: fail when a trace misses a canonical lifecycle stage
  -tasks N    scenario/live: rescale the task mix to roughly N tasks total
  -concurrency N  live only: bound each master's in-flight admissions
  -journal F  live only: append each master's crash-safe dispatch journal to
              F.{in-process,tcp}.wal (inspect with 'greensched journal')
`)
}
