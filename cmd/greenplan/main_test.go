package main

import (
	"strings"
	"testing"

	"greensched/internal/provision"
)

func TestLintCleanPlan(t *testing.T) {
	plan := &provision.Plan{Records: []provision.Record{
		{Value: 0, Temperature: 22, Cost: 1.0, Candidates: 4},
		{Value: 600, Temperature: 23, Cost: 0.8, Candidates: 8},
	}}
	if problems := Lint(plan); len(problems) != 0 {
		t.Errorf("clean plan flagged: %v", problems)
	}
}

func TestLintEmptyPlan(t *testing.T) {
	if problems := Lint(&provision.Plan{}); len(problems) != 1 {
		t.Errorf("empty plan: %v", problems)
	}
}

func TestLintFindsEveryProblem(t *testing.T) {
	plan := &provision.Plan{Records: []provision.Record{
		{Value: 100, Temperature: 22, Cost: 1.5, Candidates: 2},  // bad cost
		{Value: 100, Temperature: 22, Cost: 0.5, Candidates: -1}, // dup + negative
		{Value: 50, Temperature: 200, Cost: 0.5, Candidates: 2},  // unordered + silly temp
	}}
	problems := Lint(plan)
	wants := []string{
		"cost 1.500",
		"duplicate timestamp",
		"negative candidate count",
		"timestamps not ascending",
		"implausible temperature",
	}
	joined := strings.Join(problems, "\n")
	for _, w := range wants {
		if !strings.Contains(joined, w) {
			t.Errorf("lint output missing %q:\n%s", w, joined)
		}
	}
}
