// Command greenplan manipulates provisioning-planning documents — the
// shared XML file of §IV-C (Figure 8) that the Master Agent polls for
// temperature, electricity cost and candidate counts:
//
//	greenplan new -out plan.xml [-days N] [-temp T]   materialize a plan from the daily tariff
//	greenplan show plan.xml [-nodes N] [-min M]       print records with rule decisions
//	greenplan validate plan.xml                       structural checks; exit 1 on problems
//	greenplan decide -cost C -temp T [-nodes N]       one-off administrator-rule decision
//
// The administrator rules are the paper's §IV-C behaviours (heat →
// 20 %, regular cost → 40 %, off-peak-1 → 70 %, off-peak-2 → 100 %).
package main

import (
	"flag"
	"fmt"
	"os"

	"greensched/internal/forecast"
	"greensched/internal/provision"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "new":
		err = runNew(os.Args[2:])
	case "show":
		err = runShow(os.Args[2:])
	case "validate":
		err = runValidate(os.Args[2:])
	case "decide":
		err = runDecide(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "greenplan: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "greenplan: %v\n", err)
		os.Exit(1)
	}
}

func runNew(args []string) error {
	fs := flag.NewFlagSet("new", flag.ExitOnError)
	out := fs.String("out", "", "output plan file (default stdout)")
	days := fs.Int("days", 1, "horizon in days")
	temp := fs.Float64("temp", 22.0, "temperature written into every record (°C)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *days < 1 {
		return fmt.Errorf("new: -days %d must be at least 1", *days)
	}
	records, err := forecast.PaperTariff().PlanRecords(0, float64(*days)*24*3600, *temp)
	if err != nil {
		return err
	}
	store := provision.NewStore()
	for _, r := range records {
		store.Put(r)
	}
	if *out == "" {
		data, err := store.Snapshot().MarshalIndent()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if err := store.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d records covering %d day(s) to %s\n", store.Len(), *days, *out)
	return nil
}

func loadPlanArg(fs *flag.FlagSet, args []string) (*provision.Plan, error) {
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("%s: want exactly one plan file argument", fs.Name())
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	return provision.ParsePlan(data)
}

func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	nodes := fs.Int("nodes", 12, "platform size for rule decisions")
	min := fs.Int("min", 1, "minimum candidate floor")
	plan, err := loadPlanArg(fs, args)
	if err != nil {
		return err
	}
	rules := provision.DefaultRules()
	fmt.Printf("%-12s %-6s %-6s %-10s %-12s %-10s %s\n",
		"timestamp", "temp", "cost", "candidates", "rule", "quota", "kind")
	for _, r := range plan.Records {
		st := provision.Status{Temperature: r.Temperature, Cost: r.Cost}
		kind := "scheduled"
		if r.Unexpected {
			kind = "unexpected"
		}
		fmt.Printf("%-12d %-6.1f %-6.2f %-10d %-12s %-10d %s\n",
			r.Value, r.Temperature, r.Cost, r.Candidates,
			rules.Match(st), rules.Quota(st, *nodes, *min), kind)
	}
	return nil
}

func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	plan, err := loadPlanArg(fs, args)
	if err != nil {
		return err
	}
	problems := Lint(plan)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d problem(s)", len(problems))
	}
	fmt.Printf("plan OK: %d records\n", len(plan.Records))
	return nil
}

// Lint reports structural problems in a plan document: unordered or
// duplicate timestamps, costs outside [0,1], negative candidate
// counts, implausible temperatures.
func Lint(plan *provision.Plan) []string {
	var out []string
	seen := make(map[int64]bool)
	lastT := int64(-1 << 62)
	for i, r := range plan.Records {
		at := func(msg string, args ...any) {
			out = append(out, fmt.Sprintf("record %d (t=%d): %s", i, r.Value, fmt.Sprintf(msg, args...)))
		}
		if seen[r.Value] {
			at("duplicate timestamp")
		}
		seen[r.Value] = true
		if r.Value < lastT {
			at("timestamps not ascending")
		}
		lastT = r.Value
		if r.Cost < 0 || r.Cost > 1 {
			at("cost %.3f outside [0,1]", r.Cost)
		}
		if r.Candidates < 0 {
			at("negative candidate count %d", r.Candidates)
		}
		if r.Temperature < -60 || r.Temperature > 80 {
			at("implausible temperature %.1f °C", r.Temperature)
		}
	}
	if len(plan.Records) == 0 {
		out = append(out, "plan has no records")
	}
	return out
}

func runDecide(args []string) error {
	fs := flag.NewFlagSet("decide", flag.ExitOnError)
	cost := fs.Float64("cost", 1.0, "electricity cost ratio in [0,1]")
	temp := fs.Float64("temp", 22.0, "temperature (°C)")
	nodes := fs.Int("nodes", 12, "platform size")
	min := fs.Int("min", 1, "minimum candidate floor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cost < 0 || *cost > 1 {
		return fmt.Errorf("decide: -cost %v outside [0,1]", *cost)
	}
	rules := provision.DefaultRules()
	st := provision.Status{Temperature: *temp, Cost: *cost}
	name := rules.Match(st)
	if name == "" {
		name = "(fail-open: all nodes)"
	}
	fmt.Printf("rule: %s\ncandidates: %d of %d\n", name, rules.Quota(st, *nodes, *min), *nodes)
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: greenplan <command> [flags]

commands:
  new       materialize a plan from the paper's daily tariff (-days N -out F)
  show      print a plan with §IV-C rule decisions (-nodes N -min M)
  validate  structural checks; exit 1 on problems
  decide    one-off rule decision (-cost C -temp T -nodes N)
`)
}
