module greensched

go 1.22
