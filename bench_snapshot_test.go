// Perf trajectory: hot-path benchmarks plus a snapshot emitter.
// BenchmarkSimHotPath times the simulator's per-task scheduling loop
// (the engine under every figure); BenchmarkSimScale10k/100k scale the
// same loop to larger workloads (the regime where quadratic accidents
// would show), with an env-gated BenchmarkSimScale1M for the
// million-task ceiling; BenchmarkLiveMasterThroughput times the fully
// instrumented live serving path — SLA admission, telemetry
// interceptor, election, solve — in requests per second,
// BenchmarkLiveMasterSpansThroughput repeats it with span tracing on
// (so the snapshot prices the tracing overhead explicitly), and
// BenchmarkLiveMasterConcurrent/ConcurrentTCP drive the same path from
// many parallel clients, in-process and across the gob wire.
// BenchmarkLiveMasterJournaled prices the crash-safe dispatch WAL and
// BenchmarkLiveMasterExternalPower prices routing every power reading
// through an out-of-process powerd sidecar.
//
// TestBenchSnapshot (gated behind BENCH_SNAPSHOT=1 so regular `go
// test` stays fast) runs them via testing.Benchmark and writes
// BENCH_10.json: ns/op and allocs/op for the sim paths and req/s for
// the live paths. Re-run with
//
//	BENCH_SNAPSHOT=1 go test -run TestBenchSnapshot -count=1 .
//
// to refresh the committed snapshot after perf-relevant changes. The
// 1M bench is opt-in:
//
//	BENCH_SCALE1M=1 go test -bench BenchmarkSimScale1M -benchtime 1x -run '^$' .
package greensched

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/journal"
	"greensched/internal/middleware"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/powerd"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

const simHotPathTasks = 256

// BenchmarkSimHotPath drives the simulator's inner loop — arrival,
// estimation-vector election, slot accounting, energy attribution —
// over a fixed workload on the paper platform. ns/op divided by the
// "tasks" metric is the per-task scheduling cost.
func BenchmarkSimHotPath(b *testing.B) {
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{
		Total: simHotPathTasks, Burst: 64, Rate: 4, Ops: 9e11,
	}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Platform: platform,
			Policy:   sched.New(sched.GreenPerf),
			Tasks:    tasks,
			Explore:  true,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != simHotPathTasks {
			b.Fatalf("completed %d of %d tasks", res.Completed, simHotPathTasks)
		}
	}
	b.ReportMetric(simHotPathTasks, "tasks")
}

const simScaleTasks = 10000

// BenchmarkSimScale10k runs the identical scheduling loop over a
// 10k-task workload. ns/op ÷ tasks against BenchmarkSimHotPath's
// per-task cost is the scaling factor: it should stay near 1 — any
// superlinear growth in the queue, estimator or ledger shows up here
// long before it shows up in a study.
func BenchmarkSimScale10k(b *testing.B) {
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{
		Total: simScaleTasks, Burst: 512, Rate: 16, Ops: 9e11,
	}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Platform: platform,
			Policy:   sched.New(sched.GreenPerf),
			Tasks:    tasks,
			Explore:  true,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != simScaleTasks {
			b.Fatalf("completed %d of %d tasks", res.Completed, simScaleTasks)
		}
	}
	b.ReportMetric(simScaleTasks, "tasks")
}

// simScale runs one full simulation of n tasks per iteration — the
// body shared by the 100k and 1M scale benches. rate and ops shape the
// arrival pressure: the 1M bench uses shorter tasks at a higher rate
// so the run measures kernel throughput, not the cost of simulating a
// hopelessly saturated cluster.
func simScale(b *testing.B, n int, rate, ops float64) {
	b.Helper()
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{
		Total: n, Burst: 2048, Rate: rate, Ops: ops,
	}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Platform: platform,
			Policy:   sched.New(sched.GreenPerf),
			Tasks:    tasks,
			Explore:  true,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != n {
			b.Fatalf("completed %d of %d tasks", res.Completed, n)
		}
	}
	b.ReportMetric(float64(n), "tasks")
}

// BenchmarkSimScale100k is the event-heap kernel's headline regime: a
// hundred thousand tasks through arrival cursor, zero-alloc elections
// and cached wait estimates in one simulated run per iteration.
func BenchmarkSimScale100k(b *testing.B) { simScale(b, 100_000, 64, 9e11) }

// BenchmarkSimScale1M is the million-task ceiling. Opt-in
// (BENCH_SCALE1M=1): a single iteration simulates a million arrivals,
// elections and completions, which is too heavy for routine bench
// sweeps but is the scale the event kernel exists for.
func BenchmarkSimScale1M(b *testing.B) {
	if os.Getenv("BENCH_SCALE1M") == "" {
		b.Skip("set BENCH_SCALE1M=1 to run the million-task benchmark")
	}
	simScale(b, 1_000_000, 640, 9e10)
}

// BenchmarkLiveMasterThroughput measures the live serving path with
// the full observability PR in place: an ObsInterceptor counting and
// tracing every request ahead of election, two metered SEDs, and
// instant services — so the number is middleware overhead, not solver
// time. The req/s metric is what BENCH_6.json records.
func BenchmarkLiveMasterThroughput(b *testing.B) {
	sedFor := func(name string, watts float64) *middleware.SED {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 4,
			Interceptors: []middleware.Interceptor{
				&middleware.MeterInterceptor{Meter: func() (float64, bool) { return watts, true }},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sed.Register(middleware.Service{
			Name:  "compute",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) { return nil, nil },
		}); err != nil {
			b.Fatal(err)
		}
		return sed
	}
	master, err := middleware.NewMaster(
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(sedFor("lean", 60), sedFor("hungry", 400)),
		middleware.WithInterceptors(&middleware.ObsInterceptor{Registry: obs.NewRegistry()}),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Learning phase, exactly like the live study: warmups teach the
	// dynamic estimators each node's speed so the timed elections
	// exercise the real ranking, not the unknown-server fallback.
	for i := 0; i < 8; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if res := master.Finalize(); res.Completed != b.N+8 {
		b.Fatalf("ledger counted %d of %d requests", res.Completed, b.N+8)
	}
}

// BenchmarkLiveMasterSpansThroughput is the same serving path with
// span tracing fully on — every request emits its submit, admission,
// elect, dispatch, queue, solve and reply spans into a discarded JSONL
// stream and feeds the stage histograms. The gap to
// BenchmarkLiveMasterThroughput is the all-in cost of tracing a
// request.
func BenchmarkLiveMasterSpansThroughput(b *testing.B) {
	sedFor := func(name string, watts float64) *middleware.SED {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 4,
			Meter: func() (float64, bool) { return watts, true },
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sed.Register(middleware.Service{
			Name:  "compute",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) { return nil, nil },
		}); err != nil {
			b.Fatal(err)
		}
		return sed
	}
	master, err := middleware.NewMaster(
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(sedFor("lean", 60), sedFor("hungry", 400)),
		middleware.WithInterceptors(&middleware.ObsInterceptor{Registry: obs.NewRegistry()}),
		middleware.WithSpans(obs.NewSpanWriter(io.Discard)),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if res := master.Finalize(); res.Completed != b.N+8 {
		b.Fatalf("ledger counted %d of %d requests", res.Completed, b.N+8)
	}
}

// benchSED builds one instant-service SED for the live benches.
func benchSED(b *testing.B, name string, watts float64) *middleware.SED {
	b.Helper()
	sed, err := middleware.NewSED(middleware.SEDConfig{
		Name:  name,
		Slots: 4,
		Interceptors: []middleware.Interceptor{
			&middleware.MeterInterceptor{Meter: func() (float64, bool) { return watts, true }},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sed.Register(middleware.Service{
		Name:  "compute",
		Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) { return nil, nil },
	}); err != nil {
		b.Fatal(err)
	}
	return sed
}

// BenchmarkLiveMasterJournaled is BenchmarkLiveMasterThroughput with a
// crash-safe dispatch journal mounted: every request appends an
// admission, a lease and a settle record to the WAL, each fsynced
// before the lifecycle proceeds. The gap to the unjournaled number is
// the all-in price of durable dispatch — dominated by fsync latency,
// as it should be.
func BenchmarkLiveMasterJournaled(b *testing.B) {
	jrn, err := journal.Open(filepath.Join(b.TempDir(), "bench.wal"), journal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer jrn.Close()
	master, err := middleware.NewMaster(
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(benchSED(b, "lean", 60), benchSED(b, "hungry", 400)),
		middleware.WithInterceptors(&middleware.ObsInterceptor{Registry: obs.NewRegistry()}),
		middleware.WithJournal(jrn),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if res := master.Finalize(); res.Completed != b.N+8 {
		b.Fatalf("ledger counted %d of %d requests", res.Completed, b.N+8)
	}
	if st := jrn.Stats(); st.Pending != 0 {
		b.Fatalf("journal left %d pending lifecycles", st.Pending)
	}
}

// BenchmarkLiveMasterExternalPower is BenchmarkLiveMasterThroughput
// with every power reading routed through an out-of-process powerd
// sidecar on a unix socket instead of an in-process meter: each solve
// window polls the sidecar over the wire (JSON line protocol, one
// exchange per reading). The gap to the unjournaled in-process number
// is the all-in price of out-of-process estimation — dominated by the
// socket round-trip, as it should be.
func BenchmarkLiveMasterExternalPower(b *testing.B) {
	addr := "unix:" + filepath.Join(b.TempDir(), "powerd.sock")
	srv, err := powerd.Serve(addr, power.StaticSource{"lean": 60, "hungry": 400}, powerd.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := powerd.NewClient(powerd.Config{Addr: addr})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	sedFor := func(name string) *middleware.SED {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 4,
			Interceptors: []middleware.Interceptor{
				&middleware.ExternalPowerInterceptor{Source: cli},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sed.Register(middleware.Service{
			Name:  "compute",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) { return nil, nil },
		}); err != nil {
			b.Fatal(err)
		}
		return sed
	}
	master, err := middleware.NewMaster(
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(sedFor("lean"), sedFor("hungry")),
		middleware.WithInterceptors(&middleware.ObsInterceptor{Registry: obs.NewRegistry()}),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if res := master.Finalize(); res.Completed != b.N+8 {
		b.Fatalf("ledger counted %d of %d requests", res.Completed, b.N+8)
	}
	if st := cli.Stats(); st.Fallbacks != 0 || st.BreakerOpen {
		b.Fatalf("bench fell back to local curves, the number is not a sidecar number: %+v", st)
	}
}

// BenchmarkLiveMasterConcurrent is the parallel-client counterpart of
// BenchmarkLiveMasterThroughput: GOMAXPROCS goroutines hammer one
// master's Do concurrently. With the agent snapshot, CAS energy
// accounting and lock-free service lookups this should scale past the
// single-client number, not collapse under a root mutex.
func BenchmarkLiveMasterConcurrent(b *testing.B) {
	master, err := middleware.NewMaster(
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(benchSED(b, "lean", 60), benchSED(b, "hungry", 400)),
		middleware.WithInterceptors(&middleware.ObsInterceptor{Registry: obs.NewRegistry()}),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if res := master.Finalize(); res.Completed != b.N+8 {
		b.Fatalf("ledger counted %d of %d requests", res.Completed, b.N+8)
	}
}

// BenchmarkLiveMasterConcurrentTCP runs 8 parallel clients, each a
// master with its own gob connections to shared SED endpoints — the
// deployment shape where many submission points feed one serving
// fleet. req/s is the fleet-wide completion rate.
func BenchmarkLiveMasterConcurrentTCP(b *testing.B) {
	const nClients = 8
	sedLean := benchSED(b, "lean", 60)
	sedHungry := benchSED(b, "hungry", 400)
	epLean, err := middleware.Serve("127.0.0.1:0", sedLean, sedLean)
	if err != nil {
		b.Fatal(err)
	}
	defer epLean.Close()
	epHungry, err := middleware.Serve("127.0.0.1:0", sedHungry, sedHungry)
	if err != nil {
		b.Fatal(err)
	}
	defer epHungry.Close()

	masters := make([]*middleware.Master, nClients)
	ctx := context.Background()
	for i := range masters {
		remLean := middleware.Dial("lean", epLean.Addr())
		remHungry := middleware.Dial("hungry", epHungry.Addr())
		defer remLean.Close()
		defer remHungry.Close()
		m, err := middleware.NewMaster(
			middleware.WithPolicy(sched.New(sched.GreenPerf)),
			middleware.WithRemotes(remLean, remHungry),
		)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if _, err := m.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
				b.Fatal(err)
			}
		}
		masters[i] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(nClients)
	for i := 0; i < nClients; i++ {
		go func(i int) {
			defer wg.Done()
			n := b.N / nClients
			if i < b.N%nClients {
				n++
			}
			for j := 0; j < n; j++ {
				if _, err := masters[i].Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
					b.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// benchSnapshotEntry mirrors one benchmark record in BENCH_10.json.
type benchSnapshotEntry struct {
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	N           int                `json:"n"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchSnapshot mirrors the committed BENCH_10.json layout.
type benchSnapshot struct {
	Go      string                        `json:"go"`
	Benches map[string]benchSnapshotEntry `json:"benches"`
}

// TestBenchDelta is the CI bench-delta gate (BENCH_DELTA=1): it runs
// BenchmarkSimHotPath live and fails when ns/op or allocs/op regress
// more than 25% against the committed BENCH_10.json. allocs/op is
// deterministic, so that bound catches real regressions exactly;
// ns/op is noisier on shared runners, which is why the tolerance is a
// wide 25% rather than a tight SLO — the gate exists to catch
// accidental quadratic blowups and alloc storms, not 5% drift.
func TestBenchDelta(t *testing.T) {
	if os.Getenv("BENCH_DELTA") == "" {
		t.Skip("set BENCH_DELTA=1 to run the bench-delta gate")
	}
	data, err := os.ReadFile("BENCH_10.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("parse BENCH_10.json: %v", err)
	}
	base, ok := snap.Benches["BenchmarkSimHotPath"]
	if !ok {
		t.Fatal("BENCH_10.json has no BenchmarkSimHotPath entry")
	}
	const tolerance = 1.25
	r := testing.Benchmark(BenchmarkSimHotPath)
	t.Logf("BenchmarkSimHotPath: live %d ns/op %d allocs/op (n=%d), snapshot %d ns/op %d allocs/op",
		r.NsPerOp(), r.AllocsPerOp(), r.N, base.NsPerOp, base.AllocsPerOp)
	if maxNs := int64(float64(base.NsPerOp) * tolerance); r.NsPerOp() > maxNs {
		t.Errorf("ns/op regressed: %d > %d (snapshot %d + 25%%)", r.NsPerOp(), maxNs, base.NsPerOp)
	}
	if maxAllocs := int64(float64(base.AllocsPerOp) * tolerance); r.AllocsPerOp() > maxAllocs {
		t.Errorf("allocs/op regressed: %d > %d (snapshot %d + 25%%)", r.AllocsPerOp(), maxAllocs, base.AllocsPerOp)
	}
}

// TestBenchSnapshot writes BENCH_10.json — the perf snapshot CI and
// future PRs diff against. Gated so the tier-1 test run stays cheap.
func TestBenchSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_10.json")
	}
	snap := benchSnapshot{Go: runtime.Version(), Benches: map[string]benchSnapshotEntry{}}

	for name, fn := range map[string]func(*testing.B){
		"BenchmarkSimHotPath":                BenchmarkSimHotPath,
		"BenchmarkSimScale10k":               BenchmarkSimScale10k,
		"BenchmarkSimScale100k":              BenchmarkSimScale100k,
		"BenchmarkLiveMasterThroughput":      BenchmarkLiveMasterThroughput,
		"BenchmarkLiveMasterSpansThroughput": BenchmarkLiveMasterSpansThroughput,
		"BenchmarkLiveMasterJournaled":       BenchmarkLiveMasterJournaled,
		"BenchmarkLiveMasterExternalPower":   BenchmarkLiveMasterExternalPower,
		"BenchmarkLiveMasterConcurrent":      BenchmarkLiveMasterConcurrent,
		"BenchmarkLiveMasterConcurrentTCP":   BenchmarkLiveMasterConcurrentTCP,
	} {
		r := testing.Benchmark(fn)
		e := benchSnapshotEntry{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), N: r.N}
		if len(r.Extra) > 0 {
			e.Extra = map[string]float64{}
			for k, v := range r.Extra {
				e.Extra[k] = v
			}
		}
		snap.Benches[name] = e
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_10.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_10.json:\n%s", data)
}
