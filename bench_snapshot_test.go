// Perf trajectory: hot-path benchmarks plus a snapshot emitter.
// BenchmarkSimHotPath times the simulator's per-task scheduling loop
// (the engine under every figure), BenchmarkSimScale10k scales the
// same loop to a 10k-task workload (the regime where quadratic
// accidents would show), BenchmarkLiveMasterThroughput times the fully
// instrumented live serving path — SLA admission, telemetry
// interceptor, election, solve — in requests per second, and
// BenchmarkLiveMasterSpansThroughput repeats it with span tracing on,
// so the snapshot prices the tracing overhead explicitly.
//
// TestBenchSnapshot (gated behind BENCH_SNAPSHOT=1 so regular `go
// test` stays fast) runs them via testing.Benchmark and writes
// BENCH_7.json: ns/op and allocs/op for the sim paths and req/s for
// the live paths. Re-run with
//
//	BENCH_SNAPSHOT=1 go test -run TestBenchSnapshot -count=1 .
//
// to refresh the committed snapshot after perf-relevant changes.
package greensched

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/middleware"
	"greensched/internal/obs"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

const simHotPathTasks = 256

// BenchmarkSimHotPath drives the simulator's inner loop — arrival,
// estimation-vector election, slot accounting, energy attribution —
// over a fixed workload on the paper platform. ns/op divided by the
// "tasks" metric is the per-task scheduling cost.
func BenchmarkSimHotPath(b *testing.B) {
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{
		Total: simHotPathTasks, Burst: 64, Rate: 4, Ops: 9e11,
	}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Platform: platform,
			Policy:   sched.New(sched.GreenPerf),
			Tasks:    tasks,
			Explore:  true,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != simHotPathTasks {
			b.Fatalf("completed %d of %d tasks", res.Completed, simHotPathTasks)
		}
	}
	b.ReportMetric(simHotPathTasks, "tasks")
}

const simScaleTasks = 10000

// BenchmarkSimScale10k runs the identical scheduling loop over a
// 10k-task workload. ns/op ÷ tasks against BenchmarkSimHotPath's
// per-task cost is the scaling factor: it should stay near 1 — any
// superlinear growth in the queue, estimator or ledger shows up here
// long before it shows up in a study.
func BenchmarkSimScale10k(b *testing.B) {
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{
		Total: simScaleTasks, Burst: 512, Rate: 16, Ops: 9e11,
	}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Platform: platform,
			Policy:   sched.New(sched.GreenPerf),
			Tasks:    tasks,
			Explore:  true,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != simScaleTasks {
			b.Fatalf("completed %d of %d tasks", res.Completed, simScaleTasks)
		}
	}
	b.ReportMetric(simScaleTasks, "tasks")
}

// BenchmarkLiveMasterThroughput measures the live serving path with
// the full observability PR in place: an ObsInterceptor counting and
// tracing every request ahead of election, two metered SEDs, and
// instant services — so the number is middleware overhead, not solver
// time. The req/s metric is what BENCH_6.json records.
func BenchmarkLiveMasterThroughput(b *testing.B) {
	sedFor := func(name string, watts float64) *middleware.SED {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 4,
			Interceptors: []middleware.Interceptor{
				&middleware.MeterInterceptor{Meter: func() (float64, bool) { return watts, true }},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sed.Register(middleware.Service{
			Name:  "compute",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) { return nil, nil },
		}); err != nil {
			b.Fatal(err)
		}
		return sed
	}
	master, err := middleware.NewMaster(
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(sedFor("lean", 60), sedFor("hungry", 400)),
		middleware.WithInterceptors(&middleware.ObsInterceptor{Registry: obs.NewRegistry()}),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Learning phase, exactly like the live study: warmups teach the
	// dynamic estimators each node's speed so the timed elections
	// exercise the real ranking, not the unknown-server fallback.
	for i := 0; i < 8; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if res := master.Finalize(); res.Completed != b.N+8 {
		b.Fatalf("ledger counted %d of %d requests", res.Completed, b.N+8)
	}
}

// BenchmarkLiveMasterSpansThroughput is the same serving path with
// span tracing fully on — every request emits its submit, admission,
// elect, dispatch, queue, solve and reply spans into a discarded JSONL
// stream and feeds the stage histograms. The gap to
// BenchmarkLiveMasterThroughput is the all-in cost of tracing a
// request.
func BenchmarkLiveMasterSpansThroughput(b *testing.B) {
	sedFor := func(name string, watts float64) *middleware.SED {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 4,
			Meter: func() (float64, bool) { return watts, true },
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sed.Register(middleware.Service{
			Name:  "compute",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) { return nil, nil },
		}); err != nil {
			b.Fatal(err)
		}
		return sed
	}
	master, err := middleware.NewMaster(
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(sedFor("lean", 60), sedFor("hungry", 400)),
		middleware.WithInterceptors(&middleware.ObsInterceptor{Registry: obs.NewRegistry()}),
		middleware.WithSpans(obs.NewSpanWriter(io.Discard)),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if res := master.Finalize(); res.Completed != b.N+8 {
		b.Fatalf("ledger counted %d of %d requests", res.Completed, b.N+8)
	}
}

// TestBenchSnapshot writes BENCH_7.json — the perf snapshot CI and
// future PRs diff against. Gated so the tier-1 test run stays cheap.
func TestBenchSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_7.json")
	}
	type entry struct {
		NsPerOp     int64              `json:"ns_per_op"`
		AllocsPerOp int64              `json:"allocs_per_op"`
		N           int                `json:"n"`
		Extra       map[string]float64 `json:"extra,omitempty"`
	}
	snap := struct {
		Go      string           `json:"go"`
		Benches map[string]entry `json:"benches"`
	}{Go: runtime.Version(), Benches: map[string]entry{}}

	for name, fn := range map[string]func(*testing.B){
		"BenchmarkSimHotPath":                BenchmarkSimHotPath,
		"BenchmarkSimScale10k":               BenchmarkSimScale10k,
		"BenchmarkLiveMasterThroughput":      BenchmarkLiveMasterThroughput,
		"BenchmarkLiveMasterSpansThroughput": BenchmarkLiveMasterSpansThroughput,
	} {
		r := testing.Benchmark(fn)
		e := entry{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), N: r.N}
		if len(r.Extra) > 0 {
			e.Extra = map[string]float64{}
			for k, v := range r.Extra {
				e.Extra[k] = v
			}
		}
		snap.Benches[name] = e
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_7.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_7.json:\n%s", data)
}
