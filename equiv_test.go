// Cross-engine equivalence: the event-heap kernel (arrival cursor,
// min-heap wait estimates, scratch-buffer elections) must produce
// byte-identical Results to the seed kernel it replaces, on the same
// seeds — including under the full composed carbon+budget+SLA+preempt+
// consolidation stack. This is the gate the PR 4 compat tests set for
// the module redesign, extended across kernels: if the refactor ever
// changes an election, a wait estimate, a virtual timestamp or a
// ledger entry, these tests fail before any figure drifts.
package greensched

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"greensched/internal/budget"
	"greensched/internal/carbon"
	"greensched/internal/cluster"
	"greensched/internal/consolidation"
	"greensched/internal/core"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// equivTasks builds a seeded burst-then-rate workload.
func equivTasks(t *testing.T, n int, burst int, rate float64) []workload.Task {
	t.Helper()
	tasks, err := workload.BurstThenRate{Total: n, Burst: burst, Rate: rate, Ops: 9e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

// equivProfile is a two-site grid so carbon tags and emissions differ
// across clusters.
func equivProfile() *carbon.Profile {
	solar := carbon.SiteProfile{Site: "solar", Signal: carbon.Diurnal{
		MeanG: 300, AmplitudeG: 250, CleanHour: 13, RenewableMin: 0.1, RenewableMax: 0.8,
	}}
	fossil := carbon.SiteProfile{Site: "fossil", Signal: carbon.Diurnal{
		MeanG: 450, AmplitudeG: 50, CleanHour: 13,
	}}
	p := carbon.MustProfile(solar)
	if err := p.SetCluster("sagittaire", fossil); err != nil {
		panic(err)
	}
	return p
}

// equivConfigs enumerates the seeded scenarios both kernels replay.
// Each entry rebuilds its config (and any stateful modules) fresh per
// run.
func equivConfigs(t *testing.T) map[string]func() sim.Config {
	t.Helper()
	return map[string]func() sim.Config{
		"placement-greenperf": func() sim.Config {
			return sim.Config{
				Platform:    cluster.PaperPlatform(),
				Policy:      sched.New(sched.GreenPerf),
				Tasks:       equivTasks(t, 400, 64, 4),
				Explore:     true,
				Seed:        1,
				ExecJitter:  0.05,
				Contention:  0.2,
				MeterNoiseW: 3,
				SampleEvery: 30,
			}
		},
		"random-policy": func() sim.Config {
			return sim.Config{
				Platform: cluster.PaperPlatform(),
				Policy:   sched.New(sched.Random),
				Tasks:    equivTasks(t, 300, 32, 8),
				Seed:     42,
			}
		},
		"crash-recovery": func() sim.Config {
			plat := cluster.MustPlatform(cluster.NewNodes("taurus", 3), cluster.NewNodes("sagittaire", 3))
			return sim.Config{
				Platform:   plat,
				Policy:     sched.New(sched.Power),
				Tasks:      equivTasks(t, 200, 48, 2),
				Explore:    true,
				Seed:       7,
				ExecJitter: 0.1,
				Crashes: map[string]float64{
					plat.Nodes[1].Name: 40,
					plat.Nodes[4].Name: 95,
				},
			}
		},
		"composed-stack": func() sim.Config {
			profile := equivProfile()
			tracker, err := budget.NewTracker(4e8, 6*3600)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := workload.BurstThenRate{Total: 32, Burst: 16, Rate: 0.02, Ops: 9e11, Class: sla.ClassBatch}.Tasks()
			if err != nil {
				t.Fatal(err)
			}
			urgent, err := workload.BurstThenRate{Total: 16, Burst: 0, Rate: 0.01, Ops: 9e10,
				Class: sla.ClassInteractive, RelDeadline: 150}.Tasks()
			if err != nil {
				t.Fatal(err)
			}
			return sim.NewScenario(
				cluster.MustPlatform(cluster.NewNodes("taurus", 3), cluster.NewNodes("sagittaire", 3)),
				workload.Merge(batch, workload.Shift(urgent, 60)),
				sim.WithPolicy(sched.New(sched.Carbon)),
				sim.WithExplore(),
				sim.WithSeed(9),
				sim.WithSlotsPerNode(1),
				sim.WithTick(300),
				sim.WithRetryEvery(510),
				sim.WithModules(
					&sim.CarbonModule{Profile: profile},
					&budget.Module{Tracker: tracker, Steer: true, Base: core.PrefNone},
					&sim.SLAModule{
						Config: &sla.Config{
							Catalog:      sla.DefaultCatalog(),
							Admission:    &sla.Admission{Margin: 1},
							Order:        sched.NewOrder(sched.EDF),
							UrgentBypass: true,
						},
						WrapDeadline: true,
					},
					&sim.PreemptModule{Preemption: &sla.Preemption{RestartPenaltyFrac: 0.1}},
					&consolidation.Module{Controller: &consolidation.CarbonController{
						Profile:     profile,
						CleanG:      350,
						DirtyG:      500,
						IdleTimeout: 600,
						MinOn:       1,
						MaxDeferSec: 4 * 3600,
					}},
				),
			)
		},
	}
}

// TestEventKernelMatchesLegacyKernel runs every scenario on both
// kernels and demands byte-identical Results.
func TestEventKernelMatchesLegacyKernel(t *testing.T) {
	for name, build := range equivConfigs(t) {
		t.Run(name, func(t *testing.T) {
			legacyCfg := build()
			legacyCfg.LegacyKernel = true
			legacyRes, err := sim.Run(legacyCfg)
			if err != nil {
				t.Fatal(err)
			}
			eventRes, err := sim.Run(build())
			if err != nil {
				t.Fatal(err)
			}
			legacyJSON, err := json.Marshal(legacyRes)
			if err != nil {
				t.Fatal(err)
			}
			eventJSON, err := json.Marshal(eventRes)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(legacyJSON, eventJSON) {
				t.Errorf("kernels diverged:\nlegacy: %s\nevent:  %s", legacyJSON, eventJSON)
			}
			if !reflect.DeepEqual(legacyRes, eventRes) {
				t.Error("kernels diverged on fields JSON does not reach")
			}
			if legacyRes.Completed == 0 {
				t.Error("scenario completed nothing; equivalence is vacuous")
			}
		})
	}
}

// TestComposedStackExercisesAllModules guards against the composed
// scenario silently degenerating: emissions, the ledger and the
// controller must all have fired, on both kernels.
func TestComposedStackExercisesAllModules(t *testing.T) {
	build := equivConfigs(t)["composed-stack"]
	for _, legacy := range []bool{true, false} {
		cfg := build()
		cfg.LegacyKernel = legacy
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CO2Grams <= 0 {
			t.Errorf("legacy=%v: no emissions integrated", legacy)
		}
		if res.SLA == nil || res.SLA.Completed == 0 {
			t.Errorf("legacy=%v: ledger never ran", legacy)
		}
		if res.Boots+res.Shutdowns == 0 {
			t.Errorf("legacy=%v: controller never acted", legacy)
		}
	}
}
