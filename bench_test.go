// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// called out in DESIGN.md §5. Each bench attaches the quantities the
// corresponding artifact reports via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper-facing numbers next to the runtime costs. The
// full rendered tables/figures come from `go run ./cmd/greensched all`
// and are recorded in EXPERIMENTS.md.
package greensched

import (
	"fmt"
	"testing"

	"greensched/internal/analysis"
	"greensched/internal/budget"
	"greensched/internal/cluster"
	"greensched/internal/core"
	"greensched/internal/dvfs"
	"greensched/internal/estvec"
	"greensched/internal/experiments"
	"greensched/internal/provision"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/thermal"
	"greensched/internal/workload"
)

// --- Table I -------------------------------------------------------

func BenchmarkTable1Platform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := cluster.PaperPlatform()
		if p.Cores() != 104 {
			b.Fatal("platform changed")
		}
		cluster.BenchmarkPlatform(p, 1e9, 0, nil)
	}
	b.ReportMetric(104, "cores")
	b.ReportMetric(12, "nodes")
}

// --- Figures 2-4: per-policy placement ------------------------------

func placementRun(b *testing.B, kind sched.Kind) *sim.Result {
	b.Helper()
	cfg := experiments.DefaultPlacementConfig()
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{
		Total: workload.PerCore(platform.Cores(), cfg.ReqsPerCore),
		Burst: int(float64(workload.PerCore(platform.Cores(), cfg.ReqsPerCore)) * cfg.BurstFrac),
		Rate:  cfg.Rate,
		Ops:   cfg.TaskOps,
	}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res, err = sim.Run(sim.Config{
			Platform:    platform,
			Policy:      sched.New(kind),
			Tasks:       tasks,
			Explore:     kind != sched.Random,
			Seed:        cfg.Seed,
			Contention:  cfg.Contention,
			ExecJitter:  cfg.ExecJitter,
			MeterNoiseW: cfg.MeterNoise,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkFigure2PowerPlacement(b *testing.B) {
	res := placementRun(b, sched.Power)
	b.ReportMetric(float64(res.PerClusterTasks["taurus"]), "taurus-tasks")
	b.ReportMetric(float64(res.PerClusterTasks["orion"]), "orion-tasks")
	b.ReportMetric(float64(res.PerClusterTasks["sagittaire"]), "sagittaire-tasks")
}

func BenchmarkFigure3PerformancePlacement(b *testing.B) {
	res := placementRun(b, sched.Performance)
	b.ReportMetric(float64(res.PerClusterTasks["orion"]), "orion-tasks")
	b.ReportMetric(float64(res.PerClusterTasks["taurus"]), "taurus-tasks")
}

func BenchmarkFigure4RandomPlacement(b *testing.B) {
	res := placementRun(b, sched.Random)
	b.ReportMetric(float64(res.PerClusterTasks["sagittaire"]), "sagittaire-tasks")
	b.ReportMetric(float64(res.Completed), "tasks")
}

// --- Figure 5 + Table II: full policy comparison ---------------------

func BenchmarkTable2PolicyComparison(b *testing.B) {
	var res *experiments.PlacementResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunPlacement(experiments.DefaultPlacementConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	gainRandom, gainPerf, loss := res.Headline()
	b.ReportMetric(res.Runs[sched.Random].Makespan, "random-makespan-s")
	b.ReportMetric(res.Runs[sched.Power].Makespan, "power-makespan-s")
	b.ReportMetric(res.Runs[sched.Performance].Makespan, "perf-makespan-s")
	b.ReportMetric(res.Runs[sched.Random].EnergyJ, "random-J")
	b.ReportMetric(res.Runs[sched.Power].EnergyJ, "power-J")
	b.ReportMetric(res.Runs[sched.Performance].EnergyJ, "perf-J")
	b.ReportMetric(gainRandom*100, "gain-vs-random-%")
	b.ReportMetric(gainPerf*100, "gain-vs-perf-%")
	b.ReportMetric(loss*100, "makespan-loss-%")
}

func BenchmarkFigure5ClusterEnergy(b *testing.B) {
	var res *experiments.PlacementResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunPlacement(experiments.DefaultPlacementConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, cl := range res.Platform.Clusters() {
		b.ReportMetric(res.Runs[sched.Power].PerClusterEnergy[cl]/1e6, "power-"+cl+"-MJ")
		b.ReportMetric(res.Runs[sched.Random].PerClusterEnergy[cl]/1e6, "random-"+cl+"-MJ")
	}
}

// --- Figures 6-7 + Table III: GreenPerf metric study -----------------

func metricRun(b *testing.B, platform *cluster.Platform) *experiments.MetricResult {
	b.Helper()
	var res *experiments.MetricResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunMetricStudy(experiments.DefaultMetricConfig(), platform)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkReplicationTable2 reruns the Table II experiment across
// five seeds and reports the headline ratios as mean and 95% CI
// half-width — the population version of the paper's point estimates.
func BenchmarkReplicationTable2(b *testing.B) {
	cfg := experiments.DefaultReplicationConfig()
	cfg.Seeds = 5
	var res *experiments.ReplicationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunReplication(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	gR, gP, loss, err := res.HeadlineSummaries()
	if err != nil {
		b.Fatal(err)
	}
	if v := res.ShapeViolations(); len(v) > 0 {
		b.Fatalf("Table II orderings violated in %d seed(s): %+v", len(v), v)
	}
	half := func(s analysis.Summary) float64 {
		lo, hi := s.CI(cfg.Confidence)
		return (hi - lo) / 2
	}
	b.ReportMetric(gR.Mean*100, "gain-vs-random-%")
	b.ReportMetric(half(gR)*100, "gain-vs-random-ci95-%")
	b.ReportMetric(gP.Mean*100, "gain-vs-perf-%")
	b.ReportMetric(half(gP)*100, "gain-vs-perf-ci95-%")
	b.ReportMetric(loss.Mean*100, "makespan-loss-%")
	b.ReportMetric(half(loss)*100, "makespan-loss-ci95-%")
}

func BenchmarkFigure6LowHeterogeneity(b *testing.B) {
	res := metricRun(b, cluster.LowHeterogeneityPlatform())
	for _, p := range res.Points {
		b.ReportMetric(p.Makespan, p.Label+"-makespan-s")
		b.ReportMetric(p.EnergyJ/1e6, p.Label+"-MJ")
	}
}

func BenchmarkFigure7HighHeterogeneity(b *testing.B) {
	res := metricRun(b, cluster.HighHeterogeneityPlatform())
	for _, p := range res.Points {
		b.ReportMetric(p.Makespan, p.Label+"-makespan-s")
		b.ReportMetric(p.EnergyJ/1e6, p.Label+"-MJ")
	}
	b.ReportMetric(res.TradeoffQuality(), "gp-tradeoff-quality")
}

func BenchmarkTable3SimulatedClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, ok := cluster.Spec("sim1"); !ok {
			b.Fatal("sim1 missing")
		}
		if _, ok := cluster.Spec("sim2"); !ok {
			b.Fatal("sim2 missing")
		}
	}
	s1, _ := cluster.Spec("sim1")
	s2, _ := cluster.Spec("sim2")
	b.ReportMetric(s1.IdleW, "sim1-idle-W")
	b.ReportMetric(s1.PeakW, "sim1-peak-W")
	b.ReportMetric(s2.IdleW, "sim2-idle-W")
	b.ReportMetric(s2.PeakW, "sim2-peak-W")
}

// --- Figure 8: provisioning plan codec -------------------------------

func BenchmarkFigure8PlanRoundTrip(b *testing.B) {
	store := experiments.PaperEventTimeline()
	plan := store.Snapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := plan.MarshalIndent()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := provision.ParsePlan(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(store.Len()), "records")
}

// --- Figure 9: adaptive provisioning ---------------------------------

func BenchmarkFigure9AdaptiveProvisioning(b *testing.B) {
	var res *sim.AdaptiveResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunAdaptive(experiments.DefaultAdaptiveConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Completed), "tasks")
	b.ReportMetric(res.EnergyJ/1e6, "energy-MJ")
	b.ReportMetric(float64(res.Boots), "boots")
	b.ReportMetric(res.DrainLagS, "drain-lag-s")
}

// --- Ablations (DESIGN.md §5) ----------------------------------------

// Dynamic vs static estimation: the paper argues static benchmarks go
// stale; this ablation compares the two approaches head to head.
// BenchmarkExtensionConsolidation compares the §II-B related-work
// baseline (load concentration + idle shutdown, refs [11][12]) against
// the paper's always-on policies on an under-utilized workload — the
// regime where GreenPerf's idle floor loses to shutdowns.
func BenchmarkExtensionConsolidation(b *testing.B) {
	var res *experiments.ConsolidationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunConsolidation(experiments.DefaultConsolidationConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	pw, _ := res.Run("POWER")
	cons, _ := res.Run("CONSOLIDATION")
	if cons.EnergyJ >= pw.EnergyJ {
		b.Fatalf("consolidation %.0f J not below always-on POWER %.0f J", cons.EnergyJ, pw.EnergyJ)
	}
	b.ReportMetric(pw.EnergyJ, "always-on-power-J")
	b.ReportMetric(cons.EnergyJ, "consolidation-J")
	b.ReportMetric((pw.EnergyJ-cons.EnergyJ)/pw.EnergyJ*100, "saving-%")
	b.ReportMetric(cons.Makespan-pw.Makespan, "makespan-cost-s")
	b.ReportMetric(float64(cons.Boots), "boots")
	b.ReportMetric(float64(cons.Shutdowns), "shutdowns")
}

// BenchmarkPreemptionStudy runs the checkpoint/restart study (CI's
// bench smoke step executes it once): preemption must out-earn the
// express-boot baseline at no more energy with zero victim breaches.
func BenchmarkPreemptionStudy(b *testing.B) {
	var res *experiments.PreemptionResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunPreemptionStudy(experiments.DefaultPreemptionConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	boot, _ := res.Run(experiments.PreemptRunExpressBoot)
	pre, _ := res.Run(experiments.PreemptRunPreemption)
	if pre.NetUSD() <= boot.NetUSD() || pre.EnergyJ > boot.EnergyJ || pre.VictimMisses != 0 {
		b.Fatalf("preemption claim broken: net $%.2f vs $%.2f, energy %.0f vs %.0f J, %d victim misses",
			pre.NetUSD(), boot.NetUSD(), pre.EnergyJ, boot.EnergyJ, pre.VictimMisses)
	}
	b.ReportMetric(pre.NetUSD()-boot.NetUSD(), "net-gain-$")
	b.ReportMetric((1-pre.EnergyJ/boot.EnergyJ)*100, "energy-saving-%")
	b.ReportMetric(float64(pre.Preemptions), "preemptions")
	b.ReportMetric(pre.RedoneOps/9e9, "redone-work-s")
}

// BenchmarkExtensionHeterogeneityContinuum generalizes Figures 6-7
// from two published platform points to a continuum: the G/GP/P
// trade-off space must widen with hardware diversity (the paper:
// GreenPerf "strongly relies on the heterogeneity of servers").
func BenchmarkExtensionHeterogeneityContinuum(b *testing.B) {
	spreads := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	var res *experiments.HeterogeneityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunHeterogeneitySweep(experiments.DefaultHeterogeneityConfig(), spreads)
		if err != nil {
			b.Fatal(err)
		}
	}
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	if res.Fit.Slope <= 0 {
		b.Fatalf("trade-off space does not grow with heterogeneity: slope %v", res.Fit.Slope)
	}
	b.ReportMetric(first.EnergySpread, "energy-spread-low-%")
	b.ReportMetric(last.EnergySpread, "energy-spread-high-%")
	b.ReportMetric(res.Fit.Slope, "spread-per-het-index-%")
	b.ReportMetric(res.Fit.R2, "fit-r2")
	b.ReportMetric(last.Quality, "gp-quality-high-het")
}

// BenchmarkAblationIdleTimeout sweeps the consolidation controller's
// idle timeout: too short thrashes boots, too long wastes idle watts.
func BenchmarkAblationIdleTimeout(b *testing.B) {
	timeouts := []float64{60, 300, 600, 1800}
	type row struct {
		timeout float64
		energy  float64
		boots   int
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, to := range timeouts {
			cfg := experiments.DefaultConsolidationConfig()
			cfg.IdleTimeout = to
			res, err := experiments.RunConsolidation(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cons, _ := res.Run("CONSOLIDATION")
			rows = append(rows, row{to, cons.EnergyJ, cons.Boots})
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.energy, fmt.Sprintf("J-timeout-%.0fs", r.timeout))
		b.ReportMetric(float64(r.boots), fmt.Sprintf("boots-timeout-%.0fs", r.timeout))
	}
}

func BenchmarkAblationStaticVsDynamic(b *testing.B) {
	var dynamic, static *experiments.PlacementResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultPlacementConfig()
		cfg.ReqsPerCore = 5
		dynamic, err = experiments.RunPlacement(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Static = true
		static, err = experiments.RunPlacement(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dynamic.Runs[sched.Power].EnergyJ/1e6, "dynamic-power-MJ")
	b.ReportMetric(static.Runs[sched.Power].EnergyJ/1e6, "static-power-MJ")
}

// Exploration (learning) phase on/off under the POWER policy.
func BenchmarkAblationExploration(b *testing.B) {
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{Total: 300, Burst: 30, Rate: 0.45, Ops: 9e11}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	run := func(explore bool) *sim.Result {
		res, err := sim.Run(sim.Config{
			Platform: platform, Policy: sched.New(sched.Power), Tasks: tasks,
			Explore: explore, Contention: 0.08, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var with, without *sim.Result
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(with.EnergyJ/1e6, "explore-MJ")
	b.ReportMetric(without.EnergyJ/1e6, "no-explore-MJ")
	b.ReportMetric(float64(without.PerClusterTasks["sagittaire"]), "no-explore-sagittaire-tasks")
}

// Overload spill threshold: queue cap 1×cores vs 2×cores.
func BenchmarkAblationQueueFactor(b *testing.B) {
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{Total: 600, Burst: 200, Rate: 1.2, Ops: 9e11}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	run := func(qf float64) *sim.Result {
		res, err := sim.Run(sim.Config{
			Platform: platform, Policy: sched.New(sched.Power), Tasks: tasks,
			Explore: true, QueueFactor: qf, Contention: 0.08, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var tight, loose *sim.Result
	for i := 0; i < b.N; i++ {
		tight = run(1)
		loose = run(2)
	}
	b.ReportMetric(tight.Makespan, "qf1-makespan-s")
	b.ReportMetric(loose.Makespan, "qf2-makespan-s")
	b.ReportMetric(tight.EnergyJ/1e6, "qf1-MJ")
	b.ReportMetric(loose.EnergyJ/1e6, "qf2-MJ")
}

// Score exponent sweep across the Eq. 2 preference range: how often
// the Eq. 6 ranking flips between the fastest and leanest server.
func BenchmarkAblationScoreExponentSweep(b *testing.B) {
	flips := 0
	for i := 0; i < b.N; i++ {
		flips = 0
		prev := ""
		for p := -0.9; p <= 0.9001; p += 0.05 {
			ranked := rankByScore(p)
			if prev != "" && ranked != prev {
				flips++
			}
			prev = ranked
		}
	}
	b.ReportMetric(float64(flips), "ranking-flips")
}

func rankByScore(p float64) string {
	policy := sched.ScorePolicy{Ops: 1e12, Pref: core.UserPref(p)}
	a := scoreVec("fast", 10e9, 400)
	bv := scoreVec("lean", 2e9, 60)
	if policy.Less(a, bv) {
		return "fast"
	}
	return "lean"
}

func scoreVec(name string, flops, watts float64) *estvec.Vector {
	return estvec.New(name).
		Set(estvec.TagFlops, flops).
		Set(estvec.TagPowerW, watts).
		SetBool(estvec.TagActive, true)
}

// Progressive vs simultaneous boot ramp: the paper staggers starts to
// avoid heat peaks; compare the peak 10-minute average power during
// the ramp.
func BenchmarkAblationProgressiveVsSimultaneousBoot(b *testing.B) {
	run := func(stepUp int) *sim.AdaptiveResult {
		store := provision.NewStore()
		store.Put(provision.Record{Value: 0, Cost: 1.0, Temperature: 22})
		store.Put(provision.Record{Value: 3600, Cost: 0.2, Temperature: 22})
		planner := provision.NewPlanner(12, 2)
		planner.StepUp = stepUp
		res, err := sim.RunAdaptive(sim.AdaptiveConfig{
			Platform: cluster.PaperPlatform(),
			Planner:  planner,
			Store:    store,
			Policy:   sched.New(sched.GreenPerf),
			TaskOps:  1.8e12,
			Horizon:  7200,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var prog, simu *sim.AdaptiveResult
	for i := 0; i < b.N; i++ {
		prog = run(2)
		simu = run(12)
	}
	b.ReportMetric(maxRampSlope(prog), "progressive-max-W-per-10min")
	b.ReportMetric(maxRampSlope(simu), "simultaneous-max-W-per-10min")
}

// maxRampSlope returns the largest 10-minute increase of average power
// — the "heat peak" proxy the progressive start avoids.
func maxRampSlope(res *sim.AdaptiveResult) float64 {
	maxDelta := 0.0
	for i := 1; i < len(res.Samples); i++ {
		d := res.Samples[i].AvgW - res.Samples[i-1].AvgW
		if d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta
}

// DVFS vs shutdown (related work, ref [8]): the best DVFS saving on a
// real node profile vs an energy-proportional strawman.
func BenchmarkAblationDVFSvsShutdown(b *testing.B) {
	taurus, _ := cluster.Spec("taurus")
	taurus.Name = "t"
	proportional := taurus
	proportional.IdleW, proportional.ActivationW, proportional.OffW = 0, 0, 0
	var real, strawman float64
	var err error
	for i := 0; i < b.N; i++ {
		real, err = dvfs.DiminishingReturns(taurus, 9e11, 500, dvfs.DefaultLevels())
		if err != nil {
			b.Fatal(err)
		}
		strawman, err = dvfs.DiminishingReturns(proportional, 9e11, 500, dvfs.DefaultLevels())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(real*100, "real-node-saving-%")
	b.ReportMetric(strawman*100, "proportional-saving-%")
}

// Thermal feedback: adaptive provisioning with measured (endogenous)
// temperature instead of injected events.
func BenchmarkAblationThermalFeedback(b *testing.B) {
	run := func() *sim.AdaptiveResult {
		store := provision.NewStore()
		store.Put(provision.Record{Value: 0, Cost: 0.2, Temperature: 21})
		planner := provision.NewPlanner(12, 4)
		planner.MinNodes = 2
		d, err := thermal.UniformRack(12, 4, 0.0055, 0.001, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		mon, err := thermal.NewMonitor(21, d, 0.6)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.RunAdaptive(sim.AdaptiveConfig{
			Platform: cluster.PaperPlatform(),
			Planner:  planner,
			Store:    store,
			Policy:   sched.New(sched.GreenPerf),
			TaskOps:  1.8e12,
			Horizon:  200 * 60,
			Thermal:  mon,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var res *sim.AdaptiveResult
	for i := 0; i < b.N; i++ {
		res = run()
	}
	heatTicks := 0
	for _, d := range res.Decisions {
		if d.RuleNow == "heat" {
			heatTicks++
		}
	}
	b.ReportMetric(float64(heatTicks), "heat-rule-ticks")
	b.ReportMetric(res.EnergyJ/1e6, "energy-MJ")
}

// Budget steering: energy consumed with and without the budget policy
// on the same workload.
func BenchmarkAblationBudgetSteering(b *testing.B) {
	platform := cluster.PaperPlatform()
	tasks, err := workload.BurstThenRate{Total: 300, Burst: 30, Rate: 0.45, Ops: 9e11}.Tasks()
	if err != nil {
		b.Fatal(err)
	}
	var unconstrained, constrained *sim.Result
	for i := 0; i < b.N; i++ {
		unconstrained, err = sim.Run(sim.Config{
			Platform: platform, Policy: sched.New(sched.Performance), Tasks: tasks,
			Explore: true, Contention: 0.08, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		// A task-energy budget at 70% of the unconstrained per-task
		// spend forces the policy toward efficiency as completions
		// charge the tracker.
		taskEnergy := 0.0
		for _, rec := range unconstrained.Records {
			taskEnergy += rec.MeanPowerW * rec.Exec()
		}
		tr, err2 := budget.NewTracker(taskEnergy*0.7, unconstrained.Makespan)
		if err2 != nil {
			b.Fatal(err2)
		}
		now := 0.0
		pol, err2 := budget.NewPolicy(tr, core.PrefMaxPerformance, 9e11, func() float64 { return now })
		if err2 != nil {
			b.Fatal(err2)
		}
		constrained, err = sim.Run(sim.Config{
			Platform: platform, Policy: pol, Tasks: tasks,
			Explore: true, Contention: 0.08, Seed: 1,
			OnFinish: func(rec sim.TaskRecord) {
				now = rec.Finish
				tr.Charge(rec.Finish, rec.MeanPowerW*rec.Exec())
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(unconstrained.EnergyJ/1e6, "unconstrained-MJ")
	b.ReportMetric(constrained.EnergyJ/1e6, "budget-steered-MJ")
}
